package dynamic

import (
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xrand"
)

func TestBatchCodecRoundTrip(t *testing.T) {
	cases := []Batch{
		{},
		{AddVertices: 3},
		{AddEdges: []graph.Edge{{U: 0, V: 1}, {U: 7, V: 2}}},
		{DelEdges: []graph.Edge{{U: 4, V: 4}}},
		{DelVertices: []uint32{1, 2, 3}},
		{
			AddVertices: 2,
			DelVertices: []uint32{9},
			DelEdges:    []graph.Edge{{U: 1, V: 2}, {U: 3, V: 4}},
			AddEdges:    []graph.Edge{{U: 5, V: 6}},
		},
	}
	for i, b := range cases {
		enc := b.AppendBinary(nil)
		dec, err := DecodeBatch(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(normalize(b), normalize(dec)) {
			t.Fatalf("case %d: round trip %+v -> %+v", i, b, dec)
		}
		// Appending to a non-empty buffer leaves the prefix alone.
		pre := []byte{0xaa, 0xbb}
		enc2 := b.AppendBinary(pre)
		if enc2[0] != 0xaa || enc2[1] != 0xbb || !reflect.DeepEqual(enc2[2:], enc) {
			t.Fatalf("case %d: AppendBinary corrupted the prefix", i)
		}
	}
}

// normalize maps nil and empty slices together for comparison.
func normalize(b Batch) Batch {
	if len(b.DelVertices) == 0 {
		b.DelVertices = nil
	}
	if len(b.DelEdges) == 0 {
		b.DelEdges = nil
	}
	if len(b.AddEdges) == 0 {
		b.AddEdges = nil
	}
	return b
}

func TestBatchCodecRejectsCorruption(t *testing.T) {
	b := Batch{
		AddVertices: 1,
		DelVertices: []uint32{3},
		AddEdges:    []graph.Edge{{U: 1, V: 2}},
	}
	enc := b.AppendBinary(nil)
	if _, err := DecodeBatch(nil); err == nil {
		t.Error("empty encoding accepted")
	}
	if _, err := DecodeBatch([]byte{99}); err == nil {
		t.Error("unknown codec version accepted")
	}
	// Every strict prefix must be rejected (truncation detection).
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeBatch(enc[:cut]); err == nil {
			t.Errorf("prefix of %d/%d bytes accepted", cut, len(enc))
		}
	}
	// Trailing garbage is rejected.
	if _, err := DecodeBatch(append(append([]byte(nil), enc...), 0x00)); err == nil {
		t.Error("trailing byte accepted")
	}
	// A huge count must fail before allocating.
	huge := []byte{batchCodecVersion, 0}
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01) // maxed uvarint
	if _, err := DecodeBatch(huge); err == nil {
		t.Error("absurd count accepted")
	}
}

// TestRestoreColoredContinuesHistory pins the recovery determinism
// contract: (restore at version k, then apply batches k+1..n) must
// reproduce byte-for-byte the maintained coloring of a replica that
// applied all n batches incrementally from the start.
func TestRestoreColoredContinuesHistory(t *testing.T) {
	base, err := gen.Kronecker(7, 6, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Procs: 1, Seed: 5, Epsilon: 0.01}
	ref := NewColored(base, opts)
	rng := xrand.New(777)
	var batches []Batch
	const total, mid = 9, 4
	var midGraph *graph.Graph
	var midColors []uint32
	var midVersion uint64
	for len(batches) < total {
		var b Batch
		for i := 0; i < 5; i++ {
			u, v := uint32(rng.Intn(base.NumVertices())), uint32(rng.Intn(base.NumVertices()))
			if rng.Intn(4) == 0 {
				b.DelEdges = append(b.DelEdges, graph.Edge{U: u, V: v})
			} else {
				b.AddEdges = append(b.AddEdges, graph.Edge{U: u, V: v})
			}
		}
		before := ref.Version()
		if _, err := ref.Apply(b); err != nil {
			t.Fatal(err)
		}
		if ref.Version() == before {
			continue
		}
		batches = append(batches, b)
		if len(batches) == mid {
			g, err := ref.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			midGraph, midColors, midVersion = g, ref.Colors(), ref.Version()
		}
	}

	restored, err := RestoreColored(midGraph, midColors, midVersion, opts)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Version() != midVersion || restored.NumColors() == 0 {
		t.Fatalf("restored at version %d numColors %d", restored.Version(), restored.NumColors())
	}
	for _, b := range batches[mid:] {
		if _, err := restored.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if restored.Version() != ref.Version() {
		t.Fatalf("version %d, want %d", restored.Version(), ref.Version())
	}
	got, want := restored.Colors(), ref.Colors()
	if len(got) != len(want) {
		t.Fatalf("colors length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("maintained coloring diverged at vertex %d: %d != %d", i, got[i], want[i])
		}
	}
}

func TestRestoreColoredRejectsBadState(t *testing.T) {
	base, err := gen.Kronecker(5, 4, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Procs: 1, Seed: 1}
	if _, err := RestoreColored(base, make([]uint32, 3), 1, opts); err == nil {
		t.Fatal("wrong-length coloring accepted")
	}
	// An improper coloring (all ones on a graph with edges) is refused.
	bad := make([]uint32, base.NumVertices())
	for i := range bad {
		bad[i] = 1
	}
	if _, err := RestoreColored(base, bad, 1, opts); err == nil {
		t.Fatal("improper coloring accepted")
	}
}
