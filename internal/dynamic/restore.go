package dynamic

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/verify"
)

// RestoreColored rebuilds a Colored from persisted state: a base graph
// captured at startVersion (a compacted snapshot, or an upload at
// version 0) together with the maintained coloring at that version.
// The coloring is verified proper against base before anything is
// adopted — a corrupt snapshot must fail recovery loudly, not serve
// monochromatic edges.
//
// Determinism contract: restoring (base@V, colors@V) and then applying
// batches V+1..V+k reproduces byte-for-byte the maintained coloring of
// the original process that applied the same batches — the repair pass
// mixes its seed with the overlay version, which the restore continues
// rather than resets, and the localized repair reads only merged
// adjacency, which is identical whether the base is the original CSR
// or a compacted snapshot of the same graph.
func RestoreColored(base *graph.Graph, colors []uint32, startVersion uint64, opts Options) (*Colored, error) {
	if len(colors) != base.NumVertices() {
		return nil, fmt.Errorf("dynamic: restore: %d colors for %d vertices", len(colors), base.NumVertices())
	}
	if err := verify.CheckProper(base, colors); err != nil {
		return nil, fmt.Errorf("dynamic: restore: persisted coloring invalid: %v", err)
	}
	c := &Colored{ov: NewOverlay(base), opts: opts.withDefaults()}
	c.ov.version = startVersion
	c.ov.snapVer = startVersion // the memoized snapshot (base itself) is current
	c.colors = append([]uint32(nil), colors...)
	c.numColors = countColors(c.colors)
	return c, nil
}
