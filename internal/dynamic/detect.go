package dynamic

import (
	"repro/internal/graph"
	"repro/internal/par"
)

// Source abstracts merged adjacency access so the conflict-frontier
// detector and the localized repair engine run over either a mutable
// Overlay or a plain immutable CSR graph. Both *Overlay and
// *graph.Graph satisfy it; the speculate-and-repair static engine
// (internal/speculate) is the first plain-CSR client.
type Source interface {
	// NumVertices returns the current vertex count.
	NumVertices() int
	// AppendNeighbors appends the sorted, duplicate-free neighbor list
	// of v to buf and returns it.
	AppendNeighbors(buf []uint32, v uint32) []uint32
}

// ConflictFrontier scans every edge of g and returns the sorted set of
// improperly colored vertices under colors: every endpoint of a
// monochromatic edge plus every uncolored vertex (color 0). It is the
// whole-graph form of the per-batch conflict detection Colored.Apply
// performs over a mutation diff — the same frontier contract
// (RepairColors recolors exactly this set), but computed from a plain
// CSR coloring with no Overlay in sight.
//
// The scan is an edge-balanced parallel pass over the CSR; the output
// order is the vertex order (par.Pack preserves index order), so the
// frontier is deterministic regardless of p.
func ConflictFrontier(g *graph.Graph, colors []uint32, p int) []uint32 {
	return par.Pack(p, g.NumVertices(), func(v int) bool {
		cv := colors[v]
		if cv == 0 {
			return true
		}
		for _, u := range g.Neighbors(uint32(v)) {
			if colors[u] == cv {
				return true
			}
		}
		return false
	})
}
