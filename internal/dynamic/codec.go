package dynamic

import (
	"encoding/binary"
	"fmt"

	"repro/internal/graph"
)

// Binary codec for Batch — the payload format of internal/store's
// write-ahead log. Layout (integers little-endian unless varint):
//
//	u8      codec version (1)
//	uvarint AddVertices
//	uvarint len(DelVertices), then that many u32 ids
//	uvarint len(DelEdges),    then that many (u32, u32) pairs
//	uvarint len(AddEdges),    then that many (u32, u32) pairs
//
// Decoding is strict: every count is bounds-checked against the bytes
// that remain before anything is allocated (a corrupt length must not
// become an allocation bomb), and trailing garbage is an error — the
// WAL's record framing already says exactly where a batch ends.
const batchCodecVersion = 1

// AppendBinary appends the binary encoding of b to buf and returns
// the extended slice.
func (b *Batch) AppendBinary(buf []byte) []byte {
	buf = append(buf, batchCodecVersion)
	buf = binary.AppendUvarint(buf, uint64(b.AddVertices))
	buf = binary.AppendUvarint(buf, uint64(len(b.DelVertices)))
	for _, v := range b.DelVertices {
		buf = binary.LittleEndian.AppendUint32(buf, v)
	}
	buf = binary.AppendUvarint(buf, uint64(len(b.DelEdges)))
	for _, e := range b.DelEdges {
		buf = binary.LittleEndian.AppendUint32(buf, e.U)
		buf = binary.LittleEndian.AppendUint32(buf, e.V)
	}
	buf = binary.AppendUvarint(buf, uint64(len(b.AddEdges)))
	for _, e := range b.AddEdges {
		buf = binary.LittleEndian.AppendUint32(buf, e.U)
		buf = binary.LittleEndian.AppendUint32(buf, e.V)
	}
	return buf
}

// DecodeBatch decodes a batch previously encoded with AppendBinary,
// consuming exactly len(data) bytes.
func DecodeBatch(data []byte) (Batch, error) {
	var b Batch
	if len(data) == 0 {
		return b, fmt.Errorf("dynamic: empty batch encoding")
	}
	if data[0] != batchCodecVersion {
		return b, fmt.Errorf("dynamic: unsupported batch codec version %d", data[0])
	}
	rest := data[1:]
	uvar := func() (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("dynamic: truncated batch varint")
		}
		rest = rest[n:]
		return v, nil
	}
	addV, err := uvar()
	if err != nil {
		return b, err
	}
	if addV > uint64(1)<<31 {
		return b, fmt.Errorf("dynamic: implausible AddVertices %d", addV)
	}
	b.AddVertices = int(addV)

	count := func(words uint64) (int, error) {
		c, err := uvar()
		if err != nil {
			return 0, err
		}
		// First compare c alone so c*words*4 cannot overflow uint64.
		if c > uint64(len(rest)) || c*words*4 > uint64(len(rest)) {
			return 0, fmt.Errorf("dynamic: batch count %d exceeds remaining %d bytes", c, len(rest))
		}
		return int(c), nil
	}
	u32 := func() uint32 {
		v := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		return v
	}

	nDelV, err := count(1)
	if err != nil {
		return b, err
	}
	if nDelV > 0 {
		b.DelVertices = make([]uint32, nDelV)
		for i := range b.DelVertices {
			b.DelVertices[i] = u32()
		}
	}
	for _, dst := range []*[]graph.Edge{&b.DelEdges, &b.AddEdges} {
		nE, err := count(2)
		if err != nil {
			return b, err
		}
		if nE > 0 {
			edges := make([]graph.Edge, nE)
			for i := range edges {
				edges[i] = graph.Edge{U: u32(), V: u32()}
			}
			*dst = edges
		}
	}
	if len(rest) != 0 {
		return b, fmt.Errorf("dynamic: %d trailing bytes after batch", len(rest))
	}
	return b, nil
}
