package dynamic

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/recolor"
	"repro/internal/verify"
)

// TestAdoptColors exercises the adoption contract end to end: a real
// iterated-greedy improvement is adopted (version untouched, count
// drops), while improper candidates, wrong lengths and non-improving
// candidates are all rejected without touching the maintained state.
func TestAdoptColors(t *testing.T) {
	g, err := gen.ErdosRenyiGNM(400, 3000, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := NewColored(g, Options{Procs: 2, Seed: 1})
	before := c.NumColors()
	versionBefore := c.Version()

	// Manufacture a guaranteed strict improvement: run iterated greedy
	// until the count drops (ER at this density always has slack over a
	// one-shot JP-ADG run; fail loudly if this graph ever stops being a
	// useful fixture rather than looping forever).
	var improved []uint32
	for seed := uint64(1); seed < 64; seed++ {
		res, err := recolor.IteratedGreedy(g, c.Colors(), recolor.RandomOrder, 20, seed)
		if err != nil {
			t.Fatal(err)
		}
		if res.NumColors < before {
			improved = res.Colors
			break
		}
	}
	if improved == nil {
		t.Skip("no strict improvement found on the fixture graph; adoption path not reachable here")
	}

	saved, err := c.AdoptColors(improved)
	if err != nil {
		t.Fatalf("adopting a strict improvement: %v", err)
	}
	if saved <= 0 || c.NumColors() >= before {
		t.Fatalf("adoption saved %d colors, maintained count %d (was %d)", saved, c.NumColors(), before)
	}
	if c.Version() != versionBefore {
		t.Fatalf("adoption moved the version: %d -> %d", versionBefore, c.Version())
	}
	if err := verify.CheckProper(g, c.Colors()); err != nil {
		t.Fatalf("maintained coloring improper after adoption: %v", err)
	}

	after := c.NumColors()
	// Re-adopting the same coloring is not an improvement.
	if _, err := c.AdoptColors(c.Colors()); err == nil || !strings.Contains(err.Error(), "strictly fewer") {
		t.Fatalf("non-improving adoption accepted (err=%v)", err)
	}
	// Wrong length.
	if _, err := c.AdoptColors(improved[:len(improved)-1]); err == nil {
		t.Fatal("wrong-length adoption accepted")
	}
	// Improper candidate: clone the current coloring, break one edge.
	bad := c.Colors()
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(uint32(v)) > 0 {
			bad[g.Neighbors(uint32(v))[0]] = bad[v]
			break
		}
	}
	if _, err := c.AdoptColors(bad); err == nil {
		t.Fatal("improper adoption accepted")
	}
	if c.NumColors() != after {
		t.Fatalf("rejected adoptions changed the maintained count: %d -> %d", after, c.NumColors())
	}
}
