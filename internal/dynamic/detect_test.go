package dynamic

import (
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/verify"
)

// TestConflictFrontierAllOneColor is the adversarial worst case: every
// vertex of a connected component shares one color, so every non-isolated
// vertex is an endpoint of a monochromatic edge.
func TestConflictFrontierAllOneColor(t *testing.T) {
	// Path 0-1-2-3 plus isolated vertex 4.
	g := mustGraph(t)(graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}, 1))
	colors := []uint32{1, 1, 1, 1, 1}
	got := ConflictFrontier(g, colors, 2)
	want := []uint32{0, 1, 2, 3} // 4 is isolated: colored, no conflict
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("frontier = %v, want %v", got, want)
	}
}

func TestConflictFrontierEmptyGraph(t *testing.T) {
	g := mustGraph(t)(graph.FromEdges(0, nil, 1))
	if got := ConflictFrontier(g, nil, 4); len(got) != 0 {
		t.Fatalf("frontier of empty graph = %v, want empty", got)
	}
}

// TestConflictFrontierUncolored: color 0 means uncolored and must be
// flagged even with no monochromatic edge — isolated vertices included.
func TestConflictFrontierUncolored(t *testing.T) {
	g := mustGraph(t)(graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}}, 1))
	colors := []uint32{1, 2, 0, 3}
	got := ConflictFrontier(g, colors, 1)
	if want := []uint32{2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("frontier = %v, want %v", got, want)
	}
}

func TestConflictFrontierProperIsEmpty(t *testing.T) {
	g := mustGraph(t)(gen.ErdosRenyiGNM(300, 900, 3, 1))
	colors := make([]uint32, g.NumVertices())
	// Proper by construction: color = position in a greedy scan.
	for v := 0; v < g.NumVertices(); v++ {
		used := map[uint32]bool{}
		for _, u := range g.Neighbors(uint32(v)) {
			used[colors[u]] = true
		}
		c := uint32(1)
		for used[c] {
			c++
		}
		colors[v] = c
	}
	if got := ConflictFrontier(g, colors, 3); len(got) != 0 {
		t.Fatalf("frontier of proper coloring = %v, want empty", got)
	}
}

// TestConflictFrontierDeterministicAcrossProcs pins the packed output
// order at p ∈ {1, 2, 8}.
func TestConflictFrontierDeterministicAcrossProcs(t *testing.T) {
	g := mustGraph(t)(gen.Kronecker(9, 8, 3, 0))
	colors := make([]uint32, g.NumVertices())
	for v := range colors {
		colors[v] = uint32(v%3) + 1 // improper on purpose
	}
	base := ConflictFrontier(g, colors, 1)
	for _, p := range []int{2, 8} {
		if got := ConflictFrontier(g, colors, p); !reflect.DeepEqual(got, base) {
			t.Fatalf("p=%d frontier differs from p=1", p)
		}
	}
}

// TestRepairColorsOverCSR drives the localized JP-over-ADG repair over a
// plain immutable graph (no Overlay): the adversarial all-one-color
// input must come out proper, and clean vertices must keep their color.
func TestRepairColorsOverCSR(t *testing.T) {
	g := mustGraph(t)(gen.Kronecker(10, 8, 3, 4))
	n := g.NumVertices()
	colors := make([]uint32, n)
	for v := range colors {
		colors[v] = 1
	}
	dirty := ConflictFrontier(g, colors, 2)
	inDirty := make([]bool, n)
	for _, v := range dirty {
		inDirty[v] = true
	}
	repaired, rounds := RepairColors(g, colors, dirty, Options{Procs: 2, Seed: 9}, 1)
	if err := verify.CheckProper(g, colors); err != nil {
		t.Fatalf("repair left an improper coloring: %v", err)
	}
	if repaired <= 0 || rounds <= 0 {
		t.Fatalf("repaired=%d rounds=%d, want both positive", repaired, rounds)
	}
	for v := 0; v < n; v++ {
		if !inDirty[v] && colors[v] != 1 {
			t.Fatalf("clean vertex %d changed color to %d", v, colors[v])
		}
	}
}

// TestRepairColorsDeterministicAcrossProcs: same seed and dirty set give
// bit-identical repairs at any worker count.
func TestRepairColorsDeterministicAcrossProcs(t *testing.T) {
	g := mustGraph(t)(gen.BarabasiAlbert(400, 5, 3, 2))
	n := g.NumVertices()
	run := func(p int) []uint32 {
		colors := make([]uint32, n)
		for v := range colors {
			colors[v] = uint32(v%2) + 1
		}
		dirty := ConflictFrontier(g, colors, p)
		RepairColors(g, colors, dirty, Options{Procs: p, Seed: 5}, 7)
		return colors
	}
	base := run(1)
	for _, p := range []int{2, 8} {
		if got := run(p); !reflect.DeepEqual(got, base) {
			t.Fatalf("p=%d repair differs from p=1", p)
		}
	}
}

// TestGraphSatisfiesSource pins the refactor contract: both the overlay
// and the plain CSR graph satisfy the Source adjacency interface.
func TestGraphSatisfiesSource(t *testing.T) {
	var _ Source = (*graph.Graph)(nil)
	var _ Source = (*Overlay)(nil)
	g := mustGraph(t)(graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, 1))
	buf := g.AppendNeighbors(nil, 1)
	if want := []uint32{0, 2}; !reflect.DeepEqual(buf, want) {
		t.Fatalf("AppendNeighbors(1) = %v, want %v", buf, want)
	}
	// Appends, not overwrites.
	buf = g.AppendNeighbors(buf, 0)
	if want := []uint32{0, 2, 1}; !reflect.DeepEqual(buf, want) {
		t.Fatalf("AppendNeighbors append = %v, want %v", buf, want)
	}
}
