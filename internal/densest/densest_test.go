package densest

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// plantedGraph embeds a k-clique in a sparse random background.
func plantedGraph(t *testing.T, n, k int) *graph.Graph {
	t.Helper()
	bg, err := gen.ErdosRenyiGNM(n, int64(n), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	edges := bg.Edges()
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			edges = append(edges, graph.Edge{U: uint32(u), V: uint32(v)})
		}
	}
	g, err := graph.FromEdges(n, edges, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCharikarFindsPlantedClique(t *testing.T) {
	g := plantedGraph(t, 500, 30)
	res := Charikar(g)
	// The clique alone has density (k-1)/2 = 14.5; the background ~1.
	if res.Density < 10 {
		t.Fatalf("Charikar density %.2f, expected ≥ 10", res.Density)
	}
	// Reported density must match the reported vertex set.
	if got := Density(g, res.Vertices); got != res.Density {
		t.Fatalf("reported density %.3f but set has %.3f", res.Density, got)
	}
}

func TestADGPeelApproximation(t *testing.T) {
	g := plantedGraph(t, 500, 30)
	exact := Charikar(g) // itself a 2-approx; optimum ≥ exact.Density
	for _, eps := range []float64{0.01, 0.1, 1} {
		res := ADGPeel(g, eps, 2)
		if got := Density(g, res.Vertices); got != res.Density {
			t.Fatalf("eps=%v: reported density %.3f but set has %.3f", eps, res.Density, got)
		}
		// ADGPeel is 2(1+ε)-approx of the optimum; the optimum is at
		// least exact.Density, so allow the full factor against it.
		if res.Density*res.ApproxFactor < exact.Density {
			t.Errorf("eps=%v: density %.2f too far below Charikar's %.2f",
				eps, res.Density, exact.Density)
		}
		if res.Rounds <= 0 {
			t.Errorf("eps=%v: no rounds recorded", eps)
		}
	}
}

func TestADGPeelLogRounds(t *testing.T) {
	g, err := gen.Kronecker(12, 8, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := ADGPeel(g, 0.5, 2)
	// ⌈log n / log 1.5⌉ + slack.
	if res.Rounds > 40 {
		t.Fatalf("ADGPeel used %d rounds on n=%d", res.Rounds, g.NumVertices())
	}
}

func TestDensityOnKnownSets(t *testing.T) {
	g, err := gen.Complete(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := Density(g, []uint32{0, 1, 2, 3, 4, 5}); got != 2.5 {
		t.Fatalf("K6 density %.2f want 2.5", got)
	}
	if got := Density(g, []uint32{0, 1}); got != 0.5 {
		t.Fatalf("K2 subgraph density %.2f want 0.5", got)
	}
	if Density(g, nil) != 0 {
		t.Fatal("empty set density != 0")
	}
}

func TestCliqueIsItsOwnDensest(t *testing.T) {
	g, err := gen.Complete(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []*Result{Charikar(g), ADGPeel(g, 0.1, 2)} {
		if len(res.Vertices) != 20 {
			t.Fatalf("densest subgraph of K20 has %d vertices", len(res.Vertices))
		}
		if res.Density != 9.5 {
			t.Fatalf("K20 density %.2f want 9.5", res.Density)
		}
	}
}

func TestEmptyAndEdgelessGraphs(t *testing.T) {
	empty, _ := graph.FromEdges(0, nil, 1)
	if res := ADGPeel(empty, 0.1, 2); res.Density != 0 || len(res.Vertices) != 0 {
		t.Fatal("empty graph mishandled")
	}
	if res := Charikar(empty); res.Density != 0 {
		t.Fatal("empty graph mishandled by Charikar")
	}
	lone, _ := graph.FromEdges(5, nil, 1)
	if res := ADGPeel(lone, 0.1, 2); res.Density != 0 {
		t.Fatal("edgeless graph density != 0")
	}
}

func TestADGPeelDeterministic(t *testing.T) {
	g := plantedGraph(t, 300, 20)
	a := ADGPeel(g, 0.2, 1)
	b := ADGPeel(g, 0.2, 4)
	if a.Density != b.Density || len(a.Vertices) != len(b.Vertices) {
		t.Fatal("ADGPeel result depends on worker count")
	}
}

func BenchmarkADGPeel(b *testing.B) {
	g, err := gen.Kronecker(13, 16, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ADGPeel(g, 0.1, 0)
	}
}
