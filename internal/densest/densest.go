// Package densest implements approximate densest-subgraph discovery — the
// second application of the paper's batch-peeling idea. §VII notes that
// "the general structure of our ADG algorithm … was also used to solve
// the (2+ε)-approximate maximal densest subgraph" (Dhulipala et al.
// [61], after Bahmani et al.): repeatedly remove, in parallel, every
// vertex whose degree is at most (1+ε) times twice the current density
// and keep the densest intermediate subgraph. The same geometric-decay
// argument as Lemma 1 gives O(log n) rounds.
//
// The exact sequential yardstick (Charikar's peeling 2-approximation
// via the degeneracy order) is provided for comparison.
package densest

import (
	"repro/internal/graph"
	"repro/internal/kcore"
	"repro/internal/par"
)

// Result describes a discovered dense subgraph.
type Result struct {
	// Vertices of the chosen subgraph.
	Vertices []uint32
	// Density is m(S)/|S| (half the average degree).
	Density float64
	// Rounds is the number of peeling rounds performed.
	Rounds int
	// ApproxFactor is the proven bound: the optimum density is at most
	// ApproxFactor times the returned Density.
	ApproxFactor float64
}

// ADGPeel finds a 2(1+ε)-approximate densest subgraph by ADG-style batch
// peeling with p workers. ε > 0 controls the rounds/quality tradeoff
// exactly as in ADG.
func ADGPeel(g *graph.Graph, eps float64, p int) *Result {
	if eps <= 0 {
		eps = 0.1
	}
	n := g.NumVertices()
	res := &Result{ApproxFactor: 2 * (1 + eps)}
	if n == 0 {
		return res
	}
	deg := g.Degrees()
	alive := make([]bool, n)
	active := make([]uint32, n)
	for i := range active {
		alive[i] = true
		active[i] = uint32(i)
	}
	edges := g.NumEdges()
	bestDensity := float64(edges) / float64(n)
	bestSize := n
	bestRound := 0
	round := 0
	removedAtRound := make([]int32, n) // round each vertex was removed in (-1 = never)
	for i := range removedAtRound {
		removedAtRound[i] = -1
	}
	for len(active) > 0 {
		round++
		density := float64(edges) / float64(len(active))
		if density > bestDensity {
			bestDensity = density
			bestSize = len(active)
			bestRound = round - 1
		}
		threshold := 2 * (1 + eps) * density
		batchIdx := par.Pack(p, len(active), func(i int) bool {
			return float64(deg[active[i]]) <= threshold
		})
		if len(batchIdx) == 0 {
			// Cannot happen (some vertex has degree ≤ average = 2·density
			// ≤ threshold); guard against float quirks.
			break
		}
		batch := make([]uint32, len(batchIdx))
		par.For(p, len(batchIdx), func(i int) { batch[i] = active[batchIdx[i]] })
		for _, v := range batch {
			alive[v] = false
			removedAtRound[v] = int32(round)
		}
		// Edges removed: those with at least one endpoint in the batch.
		removedEdges := par.ReduceInt64(p, len(batch), func(i int) int64 {
			v := batch[i]
			var c int64
			for _, u := range g.Neighbors(v) {
				if alive[u] {
					c++ // edge to a survivor
				} else if u > v && removedAtRound[u] == int32(round) {
					c++ // edge inside the batch, counted once
				} else if u < v && removedAtRound[u] == int32(round) {
					// counted by the other endpoint
					continue
				}
			}
			return c
		})
		edges -= removedEdges
		keep := par.Pack(p, len(active), func(i int) bool { return alive[active[i]] })
		next := make([]uint32, len(keep))
		par.For(p, len(keep), func(i int) { next[i] = active[keep[i]] })
		// Update survivor degrees (pull style, race-free), edge-balanced
		// over survivor degrees.
		par.ForWeightedBy(p, len(next), func(i int) int64 {
			return int64(g.Degree(next[i]))
		}, func(i int) {
			u := next[i]
			var c int32
			for _, w := range g.Neighbors(u) {
				if removedAtRound[w] == int32(round) {
					c++
				}
			}
			deg[u] -= c
		})
		active = next
	}
	res.Rounds = round
	res.Density = bestDensity
	// Reconstruct the best subgraph: vertices alive after bestRound
	// rounds (removedAtRound > bestRound or never removed).
	res.Vertices = par.Pack(p, n, func(v int) bool {
		return removedAtRound[v] == -1 || int(removedAtRound[v]) > bestRound
	})
	if len(res.Vertices) != bestSize {
		// Defensive: sizes must agree by construction.
		res.Vertices = res.Vertices[:0]
		for v := 0; v < n; v++ {
			if removedAtRound[v] == -1 || int(removedAtRound[v]) > bestRound {
				res.Vertices = append(res.Vertices, uint32(v))
			}
		}
	}
	return res
}

// Charikar finds a 2-approximate densest subgraph by exact min-degree
// peeling (the sequential yardstick): the densest suffix of the
// degeneracy order.
func Charikar(g *graph.Graph) *Result {
	n := g.NumVertices()
	res := &Result{ApproxFactor: 2}
	if n == 0 {
		return res
	}
	dec := kcore.Decompose(g)
	// Walking the peel order, track edges remaining after each removal.
	edges := g.NumEdges()
	best := float64(edges) / float64(n)
	bestPos := -1 // best suffix starts after position bestPos
	removed := make([]bool, n)
	for i := 0; i < n-1; i++ {
		v := dec.Order[i]
		for _, u := range g.Neighbors(v) {
			if !removed[u] {
				edges--
			}
		}
		removed[v] = true
		density := float64(edges) / float64(n-i-1)
		if density > best {
			best = density
			bestPos = i
		}
	}
	res.Density = best
	res.Rounds = n
	for i := bestPos + 1; i < n; i++ {
		res.Vertices = append(res.Vertices, dec.Order[i])
	}
	if bestPos == -1 {
		res.Vertices = append([]uint32(nil), dec.Order...)
	}
	return res
}

// Density computes m(S)/|S| for the induced subgraph on set.
func Density(g *graph.Graph, set []uint32) float64 {
	if len(set) == 0 {
		return 0
	}
	in := make(map[uint32]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	var m int64
	for _, v := range set {
		for _, u := range g.Neighbors(v) {
			if v < u && in[u] {
				m++
			}
		}
	}
	return float64(m) / float64(len(set))
}
