package greedy

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/kcore"
	"repro/internal/order"
	"repro/internal/verify"
)

func graphs(t testing.TB) map[string]*graph.Graph {
	t.Helper()
	out := map[string]*graph.Graph{}
	add := func(name string) func(*graph.Graph, error) {
		return func(g *graph.Graph, err error) {
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			out[name] = g
		}
	}
	add("er")(gen.ErdosRenyiGNM(250, 1200, 1, 2))
	add("ba")(gen.BarabasiAlbert(300, 4, 3, 2))
	add("grid")(gen.Grid2D(12, 13, 2))
	add("clique")(gen.Complete(20, 2))
	add("star")(gen.Star(80, 2))
	add("cycle")(gen.Cycle(21, 2))
	add("bip")(gen.CompleteBipartite(9, 17, 2))
	add("edgeless")(graph.FromEdges(5, nil, 1))
	add("empty")(graph.FromEdges(0, nil, 1))
	return out
}

func TestAllGreedyVariantsProper(t *testing.T) {
	for gname, g := range graphs(t) {
		results := map[string]*Result{
			"FF": FF(g),
			"LF": LF(g, 1),
			"SL": SL(g),
			"R":  R(g, 1),
			"ID": ID(g),
			"SD": SD(g),
		}
		for name, res := range results {
			if g.NumVertices() == 0 {
				continue
			}
			if err := verify.CheckProper(g, res.Colors); err != nil {
				t.Errorf("%s/Greedy-%s: %v", gname, name, err)
			}
			if res.NumColors > g.MaxDegree()+1 {
				t.Errorf("%s/Greedy-%s: %d colors > Δ+1", gname, name, res.NumColors)
			}
		}
	}
}

func TestGreedySLDegeneracyBound(t *testing.T) {
	for gname, g := range graphs(t) {
		if g.NumVertices() == 0 {
			continue
		}
		d := kcore.Degeneracy(g)
		res := SL(g)
		if res.NumColors > d+1 {
			t.Errorf("%s: Greedy-SL used %d colors > d+1 = %d", gname, res.NumColors, d+1)
		}
	}
}

func TestSDOptimalOnEasyGraphs(t *testing.T) {
	g := graphs(t)
	// DSATUR is exact on bipartite graphs.
	if res := SD(g["bip"]); res.NumColors != 2 {
		t.Errorf("SD on K9,17: %d colors, want 2", res.NumColors)
	}
	if res := SD(g["grid"]); res.NumColors != 2 {
		t.Errorf("SD on grid: %d colors, want 2", res.NumColors)
	}
	if res := SD(g["clique"]); res.NumColors != 20 {
		t.Errorf("SD on K20: %d colors, want 20", res.NumColors)
	}
	// Odd cycle: chromatic number 3; DSATUR achieves it.
	if res := SD(g["cycle"]); res.NumColors != 3 {
		t.Errorf("SD on C21: %d colors, want 3", res.NumColors)
	}
	if res := SD(g["star"]); res.NumColors != 2 {
		t.Errorf("SD on star: %d colors, want 2", res.NumColors)
	}
}

func TestIDReasonableQuality(t *testing.T) {
	g := graphs(t)["ba"]
	d := kcore.Degeneracy(g)
	res := ID(g)
	// ID has no d-based guarantee but should stay within a small factor on
	// BA graphs.
	if res.NumColors > 4*d+4 {
		t.Errorf("Greedy-ID used %d colors with d=%d", res.NumColors, d)
	}
}

func TestGreedyMatchesJPOrderSemantics(t *testing.T) {
	// Greedy with ordering X must equal the sequential simulation used in
	// the JP tests: colors depend only on the order, here FF.
	g := graphs(t)["er"]
	res := FF(g)
	n := g.NumVertices()
	forbidden := make([]bool, g.MaxDegree()+2)
	for v := 0; v < n; v++ {
		for i := range forbidden {
			forbidden[i] = false
		}
		for _, u := range g.Neighbors(uint32(v)) {
			if u < uint32(v) {
				forbidden[res.Colors[u]] = true
			}
		}
		c := uint32(1)
		for forbidden[c] {
			c++
		}
		if res.Colors[v] != c {
			t.Fatalf("greedy FF deviates from first-fit at %d", v)
		}
	}
}

func TestColorWithCustomOrdering(t *testing.T) {
	g := graphs(t)["cycle"]
	res := Color(g, order.Random(g, 99))
	if err := verify.CheckProper(g, res.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyProperty(t *testing.T) {
	check := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw%40) + 1
		g, err := gen.ErdosRenyiGNM(n, int64(mRaw)%150, seed, 1)
		if err != nil {
			return false
		}
		for _, res := range []*Result{FF(g), SL(g), SD(g), ID(g), R(g, seed)} {
			if !verify.IsProper(g, res.Colors, 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGreedySD(b *testing.B) {
	g, err := gen.Kronecker(12, 8, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SD(g)
	}
}
