// Package greedy implements the sequential Greedy coloring scheme [25]
// and the two dynamic-order baselines of Table III class 2 — Greedy-ID
// (incidence degree [1]) and Greedy-SD (saturation degree / DSATUR [27]).
// These are the quality yardsticks the paper compares against: they are
// unparallelizable but produce excellent colorings.
package greedy

import (
	"repro/internal/graph"
	"repro/internal/order"
)

// Result reports a sequential coloring.
type Result struct {
	Colors    []uint32
	NumColors int
}

// Color greedily colors vertices in decreasing priority order of ord:
// each vertex takes the smallest color unused by already-colored
// neighbors. With the same ordering, Greedy and JP produce the same
// coloring (JP is its parallelization).
func Color(g *graph.Graph, ord *order.Ordering) *Result {
	n := g.NumVertices()
	seq := sortByKeyDesc(ord.Keys)
	return colorSequence(g, seq, n)
}

// colorSequence colors vertices in the order given by seq.
func colorSequence(g *graph.Graph, seq []uint32, n int) *Result {
	colors := make([]uint32, n)
	maxDeg := g.MaxDegree()
	forbidden := make([]uint64, maxDeg+2)
	var epoch uint64
	for _, v := range seq {
		epoch++
		deg := g.Degree(v)
		for _, u := range g.Neighbors(v) {
			if c := colors[u]; c != 0 && int(c) <= deg+1 {
				forbidden[c] = epoch
			}
		}
		c := uint32(1)
		for forbidden[c] == epoch {
			c++
		}
		colors[v] = c
	}
	return &Result{Colors: colors, NumColors: countColors(colors)}
}

// ID is Greedy-ID [1]: vertices are colored in incidence-degree order
// (most already-colored neighbors first).
func ID(g *graph.Graph) *Result {
	return Color(g, order.IncidenceDegree(g))
}

// SD is Greedy-SD (DSATUR) [27]: at each step color the vertex whose
// neighbors currently use the most distinct colors (the saturation
// degree), breaking ties by residual degree. O((n+m) log n)-ish with a
// lazy max-heap; the order is inherently sequential.
func SD(g *graph.Graph) *Result {
	n := g.NumVertices()
	colors := make([]uint32, n)
	if n == 0 {
		return &Result{Colors: colors}
	}
	maxDeg := g.MaxDegree()
	// satColors[v] tracks the distinct neighbor colors of v as a bitmap
	// over colors 1..deg(v)+1 (higher colors cannot affect v's choice).
	satSize := make([]int32, n) // saturation degree
	satBits := make([][]uint64, n)
	for v := 0; v < n; v++ {
		words := (g.Degree(uint32(v)) + 2 + 63) / 64
		satBits[v] = make([]uint64, words)
	}
	// Bucket queue over saturation degree with lazy entries.
	buckets := make([][]uint32, maxDeg+2)
	for v := 0; v < n; v++ {
		buckets[0] = append(buckets[0], uint32(v))
	}
	cur := 0
	forbidden := make([]uint64, maxDeg+2)
	var epoch uint64
	for colored := 0; colored < n; colored++ {
		// Pop the live vertex with maximum saturation (ties: any).
		v := -1
		for cur >= 0 {
			b := buckets[cur]
			for len(b) > 0 {
				cand := b[len(b)-1]
				b = b[:len(b)-1]
				if colors[cand] == 0 && int(satSize[cand]) == cur {
					v = int(cand)
					break
				}
			}
			buckets[cur] = b
			if v >= 0 {
				break
			}
			cur--
		}
		if v < 0 {
			for u := 0; u < n; u++ {
				if colors[u] == 0 {
					v = u
					break
				}
			}
		}
		// Color v with the smallest free color.
		epoch++
		deg := g.Degree(uint32(v))
		for _, u := range g.Neighbors(uint32(v)) {
			if c := colors[u]; c != 0 && int(c) <= deg+1 {
				forbidden[c] = epoch
			}
		}
		c := uint32(1)
		for forbidden[c] == epoch {
			c++
		}
		colors[v] = c
		// Update neighbor saturations.
		for _, u := range g.Neighbors(uint32(v)) {
			if colors[u] != 0 {
				continue
			}
			limit := g.Degree(u) + 1
			if int(c) > limit {
				continue // cannot influence u's color choice
			}
			w, bit := c/64, c%64
			if satBits[u][w]&(1<<bit) == 0 {
				satBits[u][w] |= 1 << bit
				satSize[u]++
				buckets[satSize[u]] = append(buckets[satSize[u]], u)
				if int(satSize[u]) > cur {
					cur = int(satSize[u])
				}
			}
		}
	}
	return &Result{Colors: colors, NumColors: countColors(colors)}
}

// FF, LF, SL, R are the static-order Greedy baselines.

// FF is Greedy in natural vertex order.
func FF(g *graph.Graph) *Result { return Color(g, order.FirstFit(g)) }

// LF is Greedy in largest-degree-first order.
func LF(g *graph.Graph, seed uint64) *Result { return Color(g, order.LargestFirst(g, seed)) }

// SL is Greedy in smallest-degree-last (degeneracy) order; ≤ d+1 colors.
func SL(g *graph.Graph) *Result { return Color(g, order.SmallestLast(g)) }

// R is Greedy in uniformly random order.
func R(g *graph.Graph, seed uint64) *Result { return Color(g, order.Random(g, seed)) }

func countColors(colors []uint32) int {
	max := uint32(0)
	for _, c := range colors {
		if c > max {
			max = c
		}
	}
	seen := make([]bool, max+1)
	n := 0
	for _, c := range colors {
		if c != 0 && !seen[c] {
			seen[c] = true
			n++
		}
	}
	return n
}

// sortByKeyDesc returns vertex IDs sorted by decreasing key. Kept fully
// sequential on purpose: the Greedy schemes are the Table III class-2
// sequential yardsticks, and their reported runtimes must not vary with
// GOMAXPROCS or borrow workers from the shared par pool.
func sortByKeyDesc(keys []uint64) []uint32 {
	n := len(keys)
	idx := make([]uint32, n)
	inv := make([]uint64, n)
	for v := 0; v < n; v++ {
		idx[v] = uint32(v)
		inv[v] = ^keys[v]
	}
	// LSD radix over inverted keys (ascending inverted = descending key).
	kbuf := make([]uint64, n)
	vbuf := make([]uint32, n)
	ksrc, kdst := inv, kbuf
	vsrc, vdst := idx, vbuf
	for shift := uint(0); shift < 64; shift += 8 {
		var counts [257]int
		lo, hi := uint64(255), uint64(0)
		for _, k := range ksrc {
			b := (k >> shift) & 255
			counts[b+1]++
			if b < lo {
				lo = b
			}
			if b > hi {
				hi = b
			}
		}
		if lo == hi {
			continue
		}
		for i := 1; i < 257; i++ {
			counts[i] += counts[i-1]
		}
		for i, k := range ksrc {
			b := (k >> shift) & 255
			kdst[counts[b]] = k
			vdst[counts[b]] = vsrc[i]
			counts[b]++
		}
		ksrc, kdst = kdst, ksrc
		vsrc, vdst = vdst, vsrc
	}
	if n > 0 && &vsrc[0] != &idx[0] {
		copy(idx, vsrc)
	}
	return idx
}
