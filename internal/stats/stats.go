// Package stats provides the measurement methodology of §VI-A — repeated
// timed runs with warmup exclusion, arithmetic means and 95% confidence
// intervals — plus the Dolan–Moré performance profiles [103] used for
// Fig. 5 and fixed-width table/series formatting for the harness output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Sample summarizes a set of repeated measurements.
type Sample struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	// CI95 is the half-width of the 95% confidence interval of the mean
	// (normal approximation; the paper uses non-parametric CIs, which
	// coincide closely at these sample sizes).
	CI95 float64
}

// Summarize computes a Sample from raw values.
func Summarize(values []float64) Sample {
	s := Sample{N: len(values)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = values[0], values[0]
	sum := 0.0
	for _, v := range values {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, v := range values {
			d := v - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
		s.CI95 = 1.96 * s.StdDev / math.Sqrt(float64(s.N))
	}
	return s
}

// Bench times fn over trials runs after warmup extra runs and returns the
// per-run durations in seconds. This mirrors the paper's methodology of
// excluding the first measurements as warmup (§VI-A).
func Bench(warmup, trials int, fn func()) []float64 {
	for i := 0; i < warmup; i++ {
		fn()
	}
	out := make([]float64, trials)
	for i := 0; i < trials; i++ {
		start := time.Now()
		fn()
		out[i] = time.Since(start).Seconds()
	}
	return out
}

// ProfilePoint is one (τ, fraction) point of a performance profile.
type ProfilePoint struct {
	Tau      float64
	Fraction float64
}

// PerfProfile computes a Dolan–Moré performance profile [103]. results
// maps solver name -> per-instance metric (lower is better; length must be
// equal across solvers). The profile of solver s at τ is the fraction of
// instances on which s's metric is within a factor τ of the instance's
// best. Returned curves are evaluated at each solver's set of ratios.
func PerfProfile(results map[string][]float64) (map[string][]ProfilePoint, error) {
	var nInstances int
	for _, vals := range results {
		if nInstances == 0 {
			nInstances = len(vals)
		} else if len(vals) != nInstances {
			return nil, fmt.Errorf("stats: ragged results (%d vs %d instances)", len(vals), nInstances)
		}
	}
	if nInstances == 0 {
		return nil, fmt.Errorf("stats: no instances")
	}
	// Per-instance best.
	best := make([]float64, nInstances)
	for i := range best {
		best[i] = math.Inf(1)
		for _, vals := range results {
			if vals[i] < best[i] {
				best[i] = vals[i]
			}
		}
		if best[i] <= 0 {
			return nil, fmt.Errorf("stats: non-positive metric on instance %d", i)
		}
	}
	profiles := make(map[string][]ProfilePoint, len(results))
	for name, vals := range results {
		ratios := make([]float64, nInstances)
		for i, v := range vals {
			ratios[i] = v / best[i]
		}
		sort.Float64s(ratios)
		points := make([]ProfilePoint, 0, nInstances)
		for i, r := range ratios {
			points = append(points, ProfilePoint{Tau: r, Fraction: float64(i+1) / float64(nInstances)})
		}
		profiles[name] = points
	}
	return profiles, nil
}

// ProfileAt evaluates a profile curve at τ (step function semantics).
func ProfileAt(points []ProfilePoint, tau float64) float64 {
	frac := 0.0
	for _, pt := range points {
		if pt.Tau <= tau {
			frac = pt.Fraction
		} else {
			break
		}
	}
	return frac
}

// Table renders rows with a header as an aligned fixed-width text table —
// the harness's "same rows the paper reports" output format.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.3fms", float64(v.Microseconds())/1000)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// FormatFloat renders a float compactly (3 significant decimals).
func FormatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Speedup returns base/v (e.g. time at 1 thread over time at p threads).
func Speedup(base, v float64) float64 {
	if v == 0 {
		return math.Inf(1)
	}
	return base / v
}
