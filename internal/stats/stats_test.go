package stats

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary=%+v", s)
	}
	wantSD := math.Sqrt(2.5)
	if math.Abs(s.StdDev-wantSD) > 1e-12 {
		t.Fatalf("stddev=%v want %v", s.StdDev, wantSD)
	}
	if s.CI95 <= 0 {
		t.Fatal("CI95 not positive")
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("empty summary wrong")
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.StdDev != 0 || s.CI95 != 0 {
		t.Fatalf("singleton summary=%+v", s)
	}
}

func TestBenchRunsCorrectCounts(t *testing.T) {
	count := 0
	vals := Bench(2, 5, func() { count++ })
	if count != 7 {
		t.Fatalf("fn ran %d times, want 7", count)
	}
	if len(vals) != 5 {
		t.Fatalf("got %d samples", len(vals))
	}
	for _, v := range vals {
		if v < 0 {
			t.Fatal("negative duration")
		}
	}
}

func TestPerfProfileBasic(t *testing.T) {
	// Solver A best on both instances; B within 2x.
	results := map[string][]float64{
		"A": {10, 20},
		"B": {20, 20},
	}
	prof, err := PerfProfile(results)
	if err != nil {
		t.Fatal(err)
	}
	// A is best everywhere: fraction 1 at τ=1.
	if got := ProfileAt(prof["A"], 1.0); got != 1.0 {
		t.Fatalf("A at τ=1: %v", got)
	}
	// B: instance 2 tied-best (ratio 1), instance 1 ratio 2.
	if got := ProfileAt(prof["B"], 1.0); got != 0.5 {
		t.Fatalf("B at τ=1: %v", got)
	}
	if got := ProfileAt(prof["B"], 2.0); got != 1.0 {
		t.Fatalf("B at τ=2: %v", got)
	}
	if got := ProfileAt(prof["B"], 1.5); got != 0.5 {
		t.Fatalf("B at τ=1.5: %v", got)
	}
}

func TestPerfProfileErrors(t *testing.T) {
	if _, err := PerfProfile(map[string][]float64{"A": {1}, "B": {1, 2}}); err == nil {
		t.Fatal("ragged input accepted")
	}
	if _, err := PerfProfile(map[string][]float64{}); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := PerfProfile(map[string][]float64{"A": {0}}); err == nil {
		t.Fatal("zero metric accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"graph", "colors", "time"}}
	tb.Add("kron-16", 42, 1.5)
	tb.Add("grid", 3, 250*time.Millisecond)
	out := tb.String()
	if !strings.Contains(out, "graph") || !strings.Contains(out, "kron-16") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + rule + 2 rows
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:      "3",
		1234.5: "1234.5",
		2.5:    "2.500",
		0.125:  "0.1250",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v)=%q want %q", in, got, want)
		}
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(10, 2) != 5 {
		t.Fatal("speedup wrong")
	}
	if !math.IsInf(Speedup(1, 0), 1) {
		t.Fatal("zero denominator not inf")
	}
}
