package quality

import (
	"context"
	"sync/atomic"
	"time"
)

// Runner is the background recolor scheduler: every Interval it wakes,
// and — only when the serving layer reports itself idle — visits each
// registered graph once with a bounded pass budget. Under load whole
// cycles are skipped (counted, not queued): quality work must never
// compete with request traffic for the inflight budget, it soaks up
// the gaps between bursts. Stop cancels the context threaded into the
// visit hook, so a recolor pass in flight returns within one
// iterated-greedy pass (recolor.IteratedGreedyContext's preemption
// point).
type Runner struct {
	// Interval between wakeups (<= 0 selects DefaultInterval).
	Interval time.Duration
	// Budget is the per-graph, per-visit iterated-greedy pass cap
	// (<= 0 selects DefaultBudget).
	Budget int
	// Idle reports whether the serving layer has capacity to spare;
	// checked before every cycle AND between graphs, so a request
	// burst arriving mid-cycle stops the sweep at the next boundary.
	// nil means always idle.
	Idle func() bool
	// Graphs lists the graphs to visit (a fresh snapshot per cycle).
	Graphs func() []string
	// Visit runs one bounded improvement attempt on a graph. The ctx
	// is cancelled by Stop. Errors are the visit's own problem to
	// record (the runner keeps sweeping).
	Visit func(ctx context.Context, name string, budget int)

	cycles  atomic.Int64
	skipped atomic.Int64

	cancel context.CancelFunc
	done   chan struct{}
}

// DefaultInterval / DefaultBudget are the colord flag defaults: wake
// four times a second when idle, spend at most four passes per graph
// per visit — small enough that a visit finishes inside one interval
// on every generated-suite graph, so the idle check stays honest.
const (
	DefaultInterval = 250 * time.Millisecond
	DefaultBudget   = 4
)

// Start launches the background loop. Must be called at most once.
func (r *Runner) Start() {
	interval := r.Interval
	if interval <= 0 {
		interval = DefaultInterval
	}
	budget := r.Budget
	if budget <= 0 {
		budget = DefaultBudget
	}
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	r.done = make(chan struct{})
	go func() {
		defer close(r.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			if r.Idle != nil && !r.Idle() {
				r.skipped.Add(1)
				continue
			}
			r.cycles.Add(1)
			for _, name := range r.Graphs() {
				if ctx.Err() != nil {
					return
				}
				if r.Idle != nil && !r.Idle() {
					break
				}
				r.Visit(ctx, name, budget)
			}
		}
	}()
}

// Stop cancels the loop (and any in-flight visit's context) and waits
// for it to exit. Safe to call without Start (no-op) and repeatedly.
func (r *Runner) Stop() {
	if r.cancel == nil {
		return
	}
	r.cancel()
	<-r.done
	r.cancel = nil
}

// Cycles returns completed (non-skipped) wakeups.
func (r *Runner) Cycles() int64 { return r.cycles.Load() }

// Skipped returns wakeups skipped because the server was busy.
func (r *Runner) Skipped() int64 { return r.skipped.Load() }
