// Package quality is colord's quality-SLO engine: per-graph coloring
// quality as an operable, observable service dimension instead of a
// one-shot property of a color request. A Tracker records each graph's
// maintained color count against an optional targetColors objective
// (the SLO), and a Runner drives idle-time iterated-greedy recoloring
// passes (internal/recolor) that only ever tighten those counts — the
// Sarıyüce et al. iterative-recoloring result turned into a daemon
// feature (ROADMAP item 3).
//
// The package owns state and scheduling only; what a "pass" does (run
// recolor.IteratedGreedyContext over a registered graph's maintained
// coloring, adopt strict improvements, persist and replicate them) is
// injected by the service layer, which keeps quality free of service
// imports and independently testable.
package quality

import (
	"sync"
	"time"
)

// SLO states reported by State.SLO: a graph with no objective has
// nothing to meet; with one, it is either met or burning.
const (
	SLONone    = "none"
	SLOMet     = "met"
	SLOBurning = "burning"
)

// State is one graph's quality record.
type State struct {
	// Colors is the maintained coloring's distinct color count as of
	// the last observation (0: no maintained coloring seen yet).
	Colors int `json:"colors"`
	// InitialColors is the count at first observation — the "before"
	// that ColorsSaved measures against.
	InitialColors int `json:"initialColors,omitempty"`
	// TargetColors is the objective (0: none set).
	TargetColors int `json:"targetColors,omitempty"`
	// Version is the graph version Colors was observed at.
	Version uint64 `json:"version"`
	// Passes counts iterated-greedy passes run over this graph;
	// Improvements counts adopted strict reductions; ColorsSaved sums
	// the colors those adoptions removed.
	Passes       int64 `json:"passes"`
	Improvements int64 `json:"improvements"`
	ColorsSaved  int64 `json:"colorsSaved"`
	// LastPassUnix / LastImprovementUnix timestamp worker activity
	// (Unix seconds; 0: never).
	LastPassUnix        int64 `json:"lastPassUnix,omitempty"`
	LastImprovementUnix int64 `json:"lastImprovementUnix,omitempty"`
}

// SLO classifies the state against its objective.
func (s State) SLO() string {
	switch {
	case s.TargetColors <= 0:
		return SLONone
	case s.Colors > 0 && s.Colors <= s.TargetColors:
		return SLOMet
	default:
		return SLOBurning
	}
}

// Met reports whether the objective is currently met (false when no
// objective is set — use SLO to distinguish).
func (s State) Met() bool { return s.SLO() == SLOMet }

// Tracker holds per-graph quality state. Safe for concurrent use.
type Tracker struct {
	mu     sync.Mutex
	graphs map[string]*State
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{graphs: make(map[string]*State)}
}

func (t *Tracker) get(name string) *State {
	s := t.graphs[name]
	if s == nil {
		s = &State{}
		t.graphs[name] = s
	}
	return s
}

// Observe records the maintained color count at a version — called when
// a coloring first exists, after mutations repair it, and after
// adoptions. The first observation also pins InitialColors.
func (t *Tracker) Observe(name string, colors int, version uint64) {
	if colors <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.get(name)
	if s.InitialColors == 0 {
		s.InitialColors = colors
	}
	s.Colors = colors
	s.Version = version
}

// SetTarget sets (or, with 0, clears) the graph's targetColors
// objective.
func (t *Tracker) SetTarget(name string, target int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.get(name).TargetColors = target
}

// RecordPass accounts one worker visit: passes spent, and — when the
// visit's result was adopted — the colors it saved.
func (t *Tracker) RecordPass(name string, passes, saved int, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.get(name)
	s.Passes += int64(passes)
	s.LastPassUnix = now.Unix()
	if saved > 0 {
		s.Improvements++
		s.ColorsSaved += int64(saved)
		s.LastImprovementUnix = now.Unix()
	}
}

// Get returns the graph's state and whether the tracker knows it.
func (t *Tracker) Get(name string) (State, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.graphs[name]
	if !ok {
		return State{}, false
	}
	return *s, true
}

// Remove drops a graph's state.
func (t *Tracker) Remove(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.graphs, name)
}

// Snapshot returns a copy of every graph's state.
func (t *Tracker) Snapshot() map[string]State {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]State, len(t.graphs))
	for name, s := range t.graphs {
		out[name] = *s
	}
	return out
}

// Totals sums the worker counters across graphs.
func (t *Tracker) Totals() (passes, improvements, colorsSaved int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.graphs {
		passes += s.Passes
		improvements += s.Improvements
		colorsSaved += s.ColorsSaved
	}
	return passes, improvements, colorsSaved
}
