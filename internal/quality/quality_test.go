package quality

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTrackerObserveAndSLO(t *testing.T) {
	tr := NewTracker()

	// Unknown graph: zero state, not known.
	if _, ok := tr.Get("g"); ok {
		t.Fatal("empty tracker knows a graph")
	}

	tr.Observe("g", 12, 3)
	s, ok := tr.Get("g")
	if !ok || s.Colors != 12 || s.InitialColors != 12 || s.Version != 3 {
		t.Fatalf("after first observe: %+v ok=%v", s, ok)
	}
	if got := s.SLO(); got != SLONone {
		t.Fatalf("no objective: SLO=%q, want %q", got, SLONone)
	}
	if s.Met() {
		t.Fatal("no objective reports met")
	}

	// A later, tighter observation keeps InitialColors pinned.
	tr.Observe("g", 10, 3)
	s, _ = tr.Get("g")
	if s.Colors != 10 || s.InitialColors != 12 {
		t.Fatalf("after improvement observe: %+v", s)
	}

	tr.SetTarget("g", 11)
	s, _ = tr.Get("g")
	if got := s.SLO(); got != SLOMet || !s.Met() {
		t.Fatalf("colors 10 target 11: SLO=%q", got)
	}
	tr.SetTarget("g", 9)
	s, _ = tr.Get("g")
	if got := s.SLO(); got != SLOBurning || s.Met() {
		t.Fatalf("colors 10 target 9: SLO=%q", got)
	}
	// Clearing the target returns to none.
	tr.SetTarget("g", 0)
	if s, _ = tr.Get("g"); s.SLO() != SLONone {
		t.Fatalf("cleared target: SLO=%q", s.SLO())
	}

	// A target set before any observation burns until a coloring shows up.
	tr.SetTarget("h", 5)
	if s, _ = tr.Get("h"); s.SLO() != SLOBurning {
		t.Fatalf("target with no coloring: SLO=%q, want burning", s.SLO())
	}

	// Zero-color observations are ignored (no maintained coloring yet).
	tr.Observe("h", 0, 1)
	if s, _ = tr.Get("h"); s.Colors != 0 {
		t.Fatalf("zero observe recorded: %+v", s)
	}

	tr.Remove("h")
	if _, ok := tr.Get("h"); ok {
		t.Fatal("removed graph still known")
	}
}

func TestTrackerPassesAndTotals(t *testing.T) {
	tr := NewTracker()
	now := time.Unix(1000, 0)
	tr.Observe("a", 9, 1)
	tr.RecordPass("a", 4, 0, now)
	s, _ := tr.Get("a")
	if s.Passes != 4 || s.Improvements != 0 || s.LastPassUnix != 1000 || s.LastImprovementUnix != 0 {
		t.Fatalf("after no-gain pass: %+v", s)
	}
	later := time.Unix(2000, 0)
	tr.RecordPass("a", 2, 3, later)
	s, _ = tr.Get("a")
	if s.Passes != 6 || s.Improvements != 1 || s.ColorsSaved != 3 || s.LastImprovementUnix != 2000 {
		t.Fatalf("after improving pass: %+v", s)
	}
	tr.RecordPass("b", 1, 1, later)
	passes, improvements, saved := tr.Totals()
	if passes != 7 || improvements != 2 || saved != 4 {
		t.Fatalf("totals: %d/%d/%d", passes, improvements, saved)
	}
	snap := tr.Snapshot()
	if len(snap) != 2 || snap["a"].Passes != 6 {
		t.Fatalf("snapshot: %+v", snap)
	}
	// Snapshot is a copy: mutating it must not leak back.
	a := snap["a"]
	a.Passes = 999
	snap["a"] = a
	if s, _ := tr.Get("a"); s.Passes != 6 {
		t.Fatal("snapshot aliases tracker state")
	}
}

func TestRunnerVisitsWhenIdle(t *testing.T) {
	var visits atomic.Int64
	var mu sync.Mutex
	seen := map[string]int{}
	r := &Runner{
		Interval: time.Millisecond,
		Budget:   3,
		Graphs:   func() []string { return []string{"a", "b"} },
		Visit: func(ctx context.Context, name string, budget int) {
			if budget != 3 {
				t.Errorf("budget = %d, want 3", budget)
			}
			visits.Add(1)
			mu.Lock()
			seen[name]++
			mu.Unlock()
		},
	}
	r.Start()
	deadline := time.Now().Add(2 * time.Second)
	for visits.Load() < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	r.Stop()
	if visits.Load() < 4 {
		t.Fatalf("only %d visits before deadline", visits.Load())
	}
	mu.Lock()
	defer mu.Unlock()
	if seen["a"] == 0 || seen["b"] == 0 {
		t.Fatalf("not every graph visited: %+v", seen)
	}
	if r.Cycles() == 0 {
		t.Fatal("no cycles counted")
	}
}

func TestRunnerSkipsUnderLoad(t *testing.T) {
	var visits atomic.Int64
	idle := atomic.Bool{} // starts busy
	r := &Runner{
		Interval: time.Millisecond,
		Idle:     func() bool { return idle.Load() },
		Graphs:   func() []string { return []string{"a"} },
		Visit:    func(context.Context, string, int) { visits.Add(1) },
	}
	r.Start()
	deadline := time.Now().Add(2 * time.Second)
	for r.Skipped() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if visits.Load() != 0 {
		r.Stop()
		t.Fatalf("busy server got %d visits", visits.Load())
	}
	if r.Skipped() < 3 {
		r.Stop()
		t.Fatalf("only %d skips before deadline", r.Skipped())
	}
	idle.Store(true)
	for visits.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	r.Stop()
	if visits.Load() == 0 {
		t.Fatal("idle server never visited")
	}
}

func TestRunnerStopCancelsVisit(t *testing.T) {
	started := make(chan struct{})
	var sawCancel atomic.Bool
	r := &Runner{
		Interval: time.Millisecond,
		Graphs:   func() []string { return []string{"a"} },
		Visit: func(ctx context.Context, _ string, _ int) {
			select {
			case started <- struct{}{}:
			default:
			}
			select {
			case <-ctx.Done():
				sawCancel.Store(true)
			case <-time.After(5 * time.Second):
			}
		},
	}
	r.Start()
	select {
	case <-started:
	case <-time.After(2 * time.Second):
		t.Fatal("visit never started")
	}
	stopDone := make(chan struct{})
	go func() { r.Stop(); close(stopDone) }()
	select {
	case <-stopDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop did not return — visit context not cancelled")
	}
	if !sawCancel.Load() {
		t.Fatal("visit never saw the cancellation")
	}
	// Stop again: no-op, no panic. A never-started runner too.
	r.Stop()
	(&Runner{}).Stop()
}

func TestRunnerDefaults(t *testing.T) {
	var budget atomic.Int64
	r := &Runner{
		// zero Interval / Budget select the defaults
		Graphs: func() []string { return []string{"a"} },
		Visit:  func(_ context.Context, _ string, b int) { budget.Store(int64(b)) },
	}
	r.Interval = 2 * time.Millisecond // keep the test fast, budget still defaulted
	r.Start()
	deadline := time.Now().Add(2 * time.Second)
	for budget.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	r.Stop()
	if budget.Load() != DefaultBudget {
		t.Fatalf("defaulted budget = %d, want %d", budget.Load(), DefaultBudget)
	}
}
