// Package par implements the work–depth style parallel primitives the paper
// assumes in §II-C/§II-D: parallel For, Reduce, Count, PrefixSum, Filter and
// the DecrementAndFetch/Join atomics used by ADG and Jones–Plassmann.
//
// Execution is backed by a persistent fork-join Pool: long-lived workers
// park on a task queue and run blocks without per-call goroutine creation,
// which is what makes the many small frontier/batch rounds of JP and ADG
// cheap (per-call spawn latency is exactly the scalability killer on small
// frontiers). The package-level functions below are thin wrappers over the
// process-wide Default pool; pool-scoped variants live on Pool.
//
// Parallelism is expressed over an explicit worker count p so that the
// scaling experiments (Fig. 2) can sweep p independently of GOMAXPROCS and
// so that p = 1 gives a deterministic sequential execution for tests.
// Chunking is either static contiguous blocks (matching the CSR layout's
// locality, §V-A) or edge-balanced weighted blocks (ForBlocksWeighted) for
// skew-heavy degree distributions. Regions whose estimated work falls
// below a calibrated grain run inline on the caller (adaptive sequential
// cutoff), so tiny loops cost a function call, not a fork.
package par

import (
	"context"
	"runtime"
	"sync/atomic"
	"time"
)

// CtxErr is the cooperative-cancellation check used at the top of the
// JP/ADG/DEC round loops. Beyond ctx.Err() it also compares the
// context's deadline against the wall clock directly: ctx.Err() flips
// only after the context's timer goroutine has run, and on GOMAXPROCS=1
// a compute-bound round loop can keep that goroutine off the processor
// for tens of milliseconds (until async preemption), making deadlines
// land late or not at all. Reading the deadline needs no scheduling, so
// expiry is observed at the very next round boundary.
func CtxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
		return context.DeadlineExceeded
	}
	return nil
}

// DefaultProcs returns the worker count used when a caller passes p <= 0:
// the current GOMAXPROCS setting.
func DefaultProcs() int {
	return runtime.GOMAXPROCS(0)
}

// clampProcs normalizes a requested worker count against the problem size.
func clampProcs(p, n int) int {
	if p <= 0 {
		p = DefaultProcs()
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// For runs body(i) for every i in [0, n) using at most p workers.
// Iterations are distributed in contiguous blocks. For n == 0 it returns
// immediately. p <= 0 selects DefaultProcs().
func For(p, n int, body func(i int)) {
	Default().For(p, n, body)
}

// ForBlocks partitions [0, n) into at most p contiguous blocks and runs
// body(lo, hi) on each block in parallel. This is the primitive all other
// loops build on; use it directly when per-worker state (scratch buffers,
// RNG streams) is needed.
func ForBlocks(p, n int, body func(lo, hi int)) {
	Default().ForBlocks(p, n, body)
}

// ForWorkers runs body(worker, lo, hi) like ForBlocks but also passes the
// block index in [0, p'), where p' <= p is the number of blocks actually
// forked (1 below the sequential grain). Useful for indexing per-worker
// scratch space; two blocks never share a worker index.
func ForWorkers(p, n int, body func(worker, lo, hi int)) {
	Default().ForWorkers(p, n, body)
}

// ForBlocksWeighted partitions the CSR vertex range [0, len(offsets)-1)
// into at most p blocks of roughly equal arc count by binary search on
// the offset array, and runs body(lo, hi) on each block. Use instead of
// ForBlocks whenever the per-vertex cost is proportional to degree.
func ForBlocksWeighted(p int, offsets []int64, body func(lo, hi int)) {
	Default().ForBlocksWeighted(p, offsets, body)
}

// ForWorkersWeighted is ForBlocksWeighted with the block index passed to
// body for per-worker scratch.
func ForWorkersWeighted(p int, offsets []int64, body func(worker, lo, hi int)) {
	Default().ForWorkersWeighted(p, offsets, body)
}

// ForWeightedBy runs body(i) over [0, n) with blocks balanced by the
// per-item weights (typically deg(items[i]) for a frontier or batch).
func ForWeightedBy(p, n int, weight func(i int) int64, body func(i int)) {
	Default().ForWeightedBy(p, n, weight, body)
}

// ForWorkersWeightedBy is the per-worker form of ForWeightedBy; scratch,
// when non-nil, provides the weight-prefix buffer (len >= n+1) so
// per-round callers can reuse it.
func ForWorkersWeightedBy(p, n int, scratch []int64, weight func(i int) int64, body func(worker, lo, hi int)) {
	Default().ForWorkersWeightedBy(p, n, scratch, weight, body)
}

// ForDynamic runs body(i) for i in [0, n) with dynamic (grabbed) scheduling
// in grain-sized chunks. Use for irregular per-iteration cost with no
// useful weight oracle (DEC-ADG-ITR's dynamic scheduling §VI).
func ForDynamic(p, n, grain int, body func(i int)) {
	Default().ForDynamic(p, n, grain, body)
}

// ReduceInt64 computes the sum over i in [0, n) of f(i) with p workers in
// O(n/p + log p) time — the paper's Reduce primitive (§II-D).
func ReduceInt64(p, n int, f func(i int) int64) int64 {
	return Default().ReduceInt64(p, n, f)
}

// ReduceFloat64 is ReduceInt64 for float64 values.
func ReduceFloat64(p, n int, f func(i int) float64) float64 {
	return Default().ReduceFloat64(p, n, f)
}

// Count returns |{i in [0,n) : pred(i)}| — the paper's Count primitive,
// implemented as a Reduce with the indicator operator (§II-D).
func Count(p, n int, pred func(i int) bool) int {
	return int(ReduceInt64(p, n, func(i int) int64 {
		if pred(i) {
			return 1
		}
		return 0
	}))
}

// MaxInt64 returns the maximum of f(i) over [0, n); it returns def for n==0.
func MaxInt64(p, n int, def int64, f func(i int) int64) int64 {
	return Default().MaxInt64(p, n, def, f)
}

// MinInt64 returns the minimum of f(i) over [0, n); it returns def for
// n==0. Implemented directly (not as -Max of -f, whose negation overflows
// for math.MinInt64 inputs or defaults).
func MinInt64(p, n int, def int64, f func(i int) int64) int64 {
	return Default().MinInt64(p, n, def, f)
}

// PrefixSumInt32 computes the exclusive prefix sum of src into dst and
// returns the total. dst must have length len(src)+1; dst[0] = 0 and
// dst[len(src)] = total. Two-pass blocked scan: O(n) work, O(n/p + p) time.
func PrefixSumInt32(p int, src []int32, dst []int64) int64 {
	return Default().PrefixSumInt32(p, src, dst)
}

// Pack writes the indices i in [0, n) with keep(i) into a fresh slice,
// preserving order. It is the Filter/Pack primitive built from a prefix sum.
func Pack(p, n int, keep func(i int) bool) []uint32 {
	return Default().Pack(p, n, keep)
}

// DecrementAndFetch atomically decrements *addr and returns the new value —
// the DAF primitive from §II-D used by ADG's UPDATE and by JP's Join.
func DecrementAndFetch(addr *int32) int32 {
	return atomic.AddInt32(addr, -1)
}

// Join decrements *addr and reports whether the caller is the last to
// arrive (the counter reached zero). This mirrors the Join synchronization
// primitive of Hasenplaugh et al. used in JPColor.
func Join(addr *int32) bool {
	return atomic.AddInt32(addr, -1) == 0
}

// FetchAdd64 atomically adds delta to *addr and returns the new value.
func FetchAdd64(addr *int64, delta int64) int64 {
	return atomic.AddInt64(addr, delta)
}
