// Package par implements the work–depth style parallel primitives the paper
// assumes in §II-C/§II-D: parallel For, Reduce, Count, PrefixSum, Filter and
// the DecrementAndFetch/Join atomics used by ADG and Jones–Plassmann.
//
// Parallelism is expressed over an explicit worker count p so that the
// scaling experiments (Fig. 2) can sweep p independently of GOMAXPROCS and
// so that p = 1 gives a deterministic sequential execution for tests.
// Chunking is static (contiguous blocks) which matches the CSR layout and
// keeps per-worker memory streams contiguous — the same locality argument
// the paper makes for its array-based U/R representation (§V-A).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultProcs returns the worker count used when a caller passes p <= 0:
// the current GOMAXPROCS setting.
func DefaultProcs() int {
	return runtime.GOMAXPROCS(0)
}

// clampProcs normalizes a requested worker count against the problem size.
func clampProcs(p, n int) int {
	if p <= 0 {
		p = DefaultProcs()
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// For runs body(i) for every i in [0, n) using p workers.
// Iterations are distributed in contiguous blocks. For n == 0 it returns
// immediately. p <= 0 selects DefaultProcs().
func For(p, n int, body func(i int)) {
	ForBlocks(p, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForBlocks partitions [0, n) into at most p contiguous blocks and runs
// body(lo, hi) on each block in parallel. This is the primitive all other
// loops build on; use it directly when per-worker state (scratch buffers,
// RNG streams) is needed.
func ForBlocks(p, n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p = clampProcs(p, n)
	if p == 1 {
		body(0, n)
		return
	}
	chunk := (n + p - 1) / p
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ForWorkers runs body(worker, lo, hi) like ForBlocks but also passes the
// worker index in [0, p'), where p' <= p is the number of blocks actually
// spawned. Useful for indexing per-worker scratch space.
func ForWorkers(p, n int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	p = clampProcs(p, n)
	if p == 1 {
		body(0, 0, n)
		return
	}
	chunk := (n + p - 1) / p
	var wg sync.WaitGroup
	worker := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			body(w, lo, hi)
		}(worker, lo, hi)
		worker++
	}
	wg.Wait()
}

// ForDynamic runs body(i) for i in [0, n) with dynamic (grabbed) scheduling
// in grain-sized chunks. Use for irregular per-iteration cost (e.g. vertices
// with wildly different degrees, DEC-ADG-ITR's dynamic scheduling §VI).
func ForDynamic(p, n, grain int, body func(i int)) {
	if n <= 0 {
		return
	}
	p = clampProcs(p, n)
	if grain < 1 {
		grain = 1
	}
	if p == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(atomic.AddInt64(&next, int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					body(i)
				}
			}
		}()
	}
	wg.Wait()
}

// ReduceInt64 computes the sum over i in [0, n) of f(i) with p workers in
// O(n/p + log p) time — the paper's Reduce primitive (§II-D).
func ReduceInt64(p, n int, f func(i int) int64) int64 {
	if n <= 0 {
		return 0
	}
	p = clampProcs(p, n)
	if p == 1 {
		var s int64
		for i := 0; i < n; i++ {
			s += f(i)
		}
		return s
	}
	partial := make([]int64, p)
	ForWorkers(p, n, func(w, lo, hi int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += f(i)
		}
		partial[w] = s
	})
	var total int64
	for _, s := range partial {
		total += s
	}
	return total
}

// ReduceFloat64 is ReduceInt64 for float64 values.
func ReduceFloat64(p, n int, f func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	p = clampProcs(p, n)
	if p == 1 {
		var s float64
		for i := 0; i < n; i++ {
			s += f(i)
		}
		return s
	}
	partial := make([]float64, p)
	ForWorkers(p, n, func(w, lo, hi int) {
		var s float64
		for i := lo; i < hi; i++ {
			s += f(i)
		}
		partial[w] = s
	})
	var total float64
	for _, s := range partial {
		total += s
	}
	return total
}

// Count returns |{i in [0,n) : pred(i)}| — the paper's Count primitive,
// implemented as a Reduce with the indicator operator (§II-D).
func Count(p, n int, pred func(i int) bool) int {
	return int(ReduceInt64(p, n, func(i int) int64 {
		if pred(i) {
			return 1
		}
		return 0
	}))
}

// MaxInt64 returns the maximum of f(i) over [0, n); it returns def for n==0.
func MaxInt64(p, n int, def int64, f func(i int) int64) int64 {
	if n <= 0 {
		return def
	}
	p = clampProcs(p, n)
	partial := make([]int64, p)
	for i := range partial {
		partial[i] = def
	}
	ForWorkers(p, n, func(w, lo, hi int) {
		m := def
		for i := lo; i < hi; i++ {
			if v := f(i); v > m {
				m = v
			}
		}
		partial[w] = m
	})
	m := def
	for _, v := range partial {
		if v > m {
			m = v
		}
	}
	return m
}

// MinInt64 returns the minimum of f(i) over [0, n); it returns def for n==0.
func MinInt64(p, n int, def int64, f func(i int) int64) int64 {
	return -MaxInt64(p, n, -def, func(i int) int64 { return -f(i) })
}

// PrefixSumInt32 computes the exclusive prefix sum of src into dst and
// returns the total. dst must have length len(src)+1; dst[0] = 0 and
// dst[len(src)] = total. Two-pass blocked scan: O(n) work, O(n/p + p) time.
func PrefixSumInt32(p int, src []int32, dst []int64) int64 {
	n := len(src)
	if len(dst) != n+1 {
		panic("par: PrefixSumInt32 requires len(dst) == len(src)+1")
	}
	if n == 0 {
		dst[0] = 0
		return 0
	}
	p = clampProcs(p, n)
	if p == 1 {
		var run int64
		for i, v := range src {
			dst[i] = run
			run += int64(v)
		}
		dst[n] = run
		return run
	}
	chunk := (n + p - 1) / p
	blocks := (n + chunk - 1) / chunk
	sums := make([]int64, blocks)
	ForWorkers(p, n, func(w, lo, hi int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(src[i])
		}
		sums[w] = s
	})
	var run int64
	for i, s := range sums {
		sums[i] = run
		run += s
	}
	total := run
	ForWorkers(p, n, func(w, lo, hi int) {
		acc := sums[w]
		for i := lo; i < hi; i++ {
			dst[i] = acc
			acc += int64(src[i])
		}
	})
	dst[n] = total
	return total
}

// Pack writes the indices i in [0, n) with keep(i) into a fresh slice,
// preserving order. It is the Filter/Pack primitive built from a prefix sum.
func Pack(p, n int, keep func(i int) bool) []uint32 {
	if n <= 0 {
		return nil
	}
	p = clampProcs(p, n)
	if p == 1 {
		out := make([]uint32, 0, 16)
		for i := 0; i < n; i++ {
			if keep(i) {
				out = append(out, uint32(i))
			}
		}
		return out
	}
	chunk := (n + p - 1) / p
	blocks := (n + chunk - 1) / chunk
	counts := make([]int32, blocks)
	ForWorkers(p, n, func(w, lo, hi int) {
		var c int32
		for i := lo; i < hi; i++ {
			if keep(i) {
				c++
			}
		}
		counts[w] = c
	})
	offsets := make([]int64, blocks+1)
	total := PrefixSumInt32(1, counts, offsets)
	out := make([]uint32, total)
	ForWorkers(p, n, func(w, lo, hi int) {
		pos := offsets[w]
		for i := lo; i < hi; i++ {
			if keep(i) {
				out[pos] = uint32(i)
				pos++
			}
		}
	})
	return out
}

// DecrementAndFetch atomically decrements *addr and returns the new value —
// the DAF primitive from §II-D used by ADG's UPDATE and by JP's Join.
func DecrementAndFetch(addr *int32) int32 {
	return atomic.AddInt32(addr, -1)
}

// Join decrements *addr and reports whether the caller is the last to
// arrive (the counter reached zero). This mirrors the Join synchronization
// primitive of Hasenplaugh et al. used in JPColor.
func Join(addr *int32) bool {
	return atomic.AddInt32(addr, -1) == 0
}

// FetchAdd64 atomically adds delta to *addr and returns the new value.
func FetchAdd64(addr *int64, delta int64) int64 {
	return atomic.AddInt64(addr, delta)
}
