package par

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMinInt64NoNegationOverflow is the regression test for the old
// implementation, which computed MinInt64 as -MaxInt64(-def, -f): both
// negations overflow for math.MinInt64, silently corrupting the result.
func TestMinInt64NoNegationOverflow(t *testing.T) {
	vals := []int64{5, math.MinInt64, 7}
	for _, p := range []int{1, 2, 4} {
		got := MinInt64(p, len(vals), math.MaxInt64, func(i int) int64 { return vals[i] })
		if got != math.MinInt64 {
			t.Fatalf("p=%d: min=%d want math.MinInt64", p, got)
		}
	}
	if got := MinInt64(4, 0, math.MinInt64, nil); got != math.MinInt64 {
		t.Fatalf("empty min=%d want math.MinInt64 default", got)
	}
	// Large-n parallel path (above the sequential grain).
	n := 100000
	got := MinInt64(4, n, math.MaxInt64, func(i int) int64 {
		if i == 99999 {
			return math.MinInt64
		}
		return int64(i)
	})
	if got != math.MinInt64 {
		t.Fatalf("parallel min=%d want math.MinInt64", got)
	}
}

func TestMaxInt64LargeN(t *testing.T) {
	n := 100000
	got := MaxInt64(4, n, math.MinInt64, func(i int) int64 { return int64(i % 777) })
	if got != 776 {
		t.Fatalf("max=%d want 776", got)
	}
}

// TestPoolStress exercises the satellite requirement: concurrent
// ForBlocks/Pack/PrefixSum from many goroutines sharing the default
// pool, with sizes above the sequential grain so real forking happens.
func TestPoolStress(t *testing.T) {
	const goroutines = 8
	const rounds = 20
	n := 50000
	src := make([]int32, n)
	for i := range src {
		src[i] = int32(i % 13)
	}
	var wantSum int64
	for _, v := range src {
		wantSum += int64(v)
	}
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				switch (gi + r) % 3 {
				case 0:
					var covered int64
					ForBlocks(4, n, func(lo, hi int) {
						atomic.AddInt64(&covered, int64(hi-lo))
					})
					if covered != int64(n) {
						t.Errorf("ForBlocks covered %d of %d", covered, n)
						return
					}
				case 1:
					out := Pack(4, n, func(i int) bool { return i%7 == 0 })
					if len(out) != (n+6)/7 {
						t.Errorf("Pack len=%d", len(out))
						return
					}
					for k := 1; k < len(out); k++ {
						if out[k-1] >= out[k] {
							t.Errorf("Pack not ascending at %d", k)
							return
						}
					}
				default:
					dst := make([]int64, n+1)
					if total := PrefixSumInt32(4, src, dst); total != wantSum {
						t.Errorf("PrefixSum total=%d want %d", total, wantSum)
						return
					}
					if dst[n/2] != dst[n/2-1]+int64(src[n/2-1]) {
						t.Errorf("PrefixSum midpoint inconsistent")
						return
					}
				}
			}
		}(gi)
	}
	wg.Wait()
}

// TestNestedFork checks deadlock-freedom of the helping join: a loop
// body that itself forks into the same pool must complete even when all
// workers are busy with outer blocks.
func TestNestedFork(t *testing.T) {
	outer := 50000
	var total int64
	ForBlocks(4, outer, func(lo, hi int) {
		// Inner fork from inside a pool-executed block.
		s := ReduceInt64(4, 10000, func(i int) int64 { return 1 })
		atomic.AddInt64(&total, s)
	})
	if total < 10000 {
		t.Fatalf("nested forks did not run (total=%d)", total)
	}
}

func TestNewPoolIndependent(t *testing.T) {
	pl := NewPool(3)
	defer pl.Close()
	if pl.Procs() != 3 {
		t.Fatalf("procs=%d", pl.Procs())
	}
	n := 100000
	var covered int64
	pl.ForBlocks(3, n, func(lo, hi int) { atomic.AddInt64(&covered, int64(hi-lo)) })
	if covered != int64(n) {
		t.Fatalf("covered %d", covered)
	}
	s := pl.Stats()
	if s.Forks == 0 {
		t.Fatalf("pool never forked: %+v", s)
	}
}

func TestSeqCutoffCounted(t *testing.T) {
	pl := NewPool(2)
	defer pl.Close()
	pl.For(2, 100, func(i int) {}) // far below the grain, p > 1
	if s := pl.Stats(); s.SeqCutoffHits != 1 || s.Forks != 0 {
		t.Fatalf("stats after tiny loop: %+v", s)
	}
	pl.For(2, 100000, func(i int) {}) // far above the grain
	if s := pl.Stats(); s.Forks != 1 {
		t.Fatalf("stats after large loop: %+v", s)
	}
}

// offsetsFor builds a CSR-style monotone prefix array from per-item
// weights.
func offsetsFor(weights []int64) []int64 {
	out := make([]int64, len(weights)+1)
	var run int64
	for i, w := range weights {
		out[i] = run
		run += w
	}
	out[len(weights)] = run
	return out
}

func TestForBlocksWeightedCoverageAndBalance(t *testing.T) {
	// Heavy skew: one huge vertex, many tiny ones.
	n := 10000
	weights := make([]int64, n)
	for i := range weights {
		weights[i] = 1
	}
	weights[0] = 1 << 20
	offsets := offsetsFor(weights)
	hit := make([]int32, n)
	var blocks int64
	ForBlocksWeighted(4, offsets, func(lo, hi int) {
		atomic.AddInt64(&blocks, 1)
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hit[i], 1)
		}
	})
	for i, h := range hit {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
	if blocks < 2 {
		t.Fatalf("skewed weighted loop did not fork (%d blocks)", blocks)
	}
	// The heavy vertex must be alone-ish: its block should not also get
	// a large share of the remaining items (edge balance, not item count).
	ForBlocksWeighted(4, offsets, func(lo, hi int) {
		if lo == 0 && hi > n/2 {
			t.Errorf("heavy block [0,%d) absorbed most items; not weight-balanced", hi)
		}
	})
}

func TestForWorkersWeightedByMatchesSequential(t *testing.T) {
	n := 30000
	weight := func(i int) int64 { return int64(i % 97) }
	var wantSum int64
	for i := 0; i < n; i++ {
		wantSum += weight(i)
	}
	for _, p := range []int{1, 2, 4, 8} {
		var sum int64
		seen := make([]int32, p)
		ForWorkersWeightedBy(p, n, nil, weight, func(w, lo, hi int) {
			if w < 0 || w >= p {
				t.Errorf("worker %d out of range", w)
				return
			}
			atomic.AddInt32(&seen[w], 1)
			var s int64
			for i := lo; i < hi; i++ {
				s += weight(i)
			}
			atomic.AddInt64(&sum, s)
		})
		if sum != wantSum {
			t.Fatalf("p=%d: sum=%d want %d", p, sum, wantSum)
		}
		for w, c := range seen {
			if c > 1 {
				t.Fatalf("p=%d: worker %d used %d times", p, w, c)
			}
		}
	}
}

func TestForWeightedByZeroWeights(t *testing.T) {
	// All-zero weights must still cover every index exactly once (the
	// planner adds an implicit +1 per item, so blocks stay non-empty).
	n := 20000
	hit := make([]int32, n)
	ForWeightedBy(4, n, func(i int) int64 { return 0 }, func(i int) {
		atomic.AddInt32(&hit[i], 1)
	})
	for i, h := range hit {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestPackDeterministicAcrossProcs(t *testing.T) {
	n := 60000
	keep := func(i int) bool { return i%3 == 0 || i%11 == 0 }
	base := Pack(1, n, keep)
	for _, p := range []int{2, 4, 8} {
		got := Pack(p, n, keep)
		if len(got) != len(base) {
			t.Fatalf("p=%d: len %d vs %d", p, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("p=%d: element %d differs", p, i)
			}
		}
	}
}

func TestPrefixSumDeterministicAcrossProcs(t *testing.T) {
	n := 60000
	src := make([]int32, n)
	for i := range src {
		src[i] = int32((i * 2654435761) % 50)
	}
	base := make([]int64, n+1)
	PrefixSumInt32(1, src, base)
	for _, p := range []int{2, 4, 8} {
		dst := make([]int64, n+1)
		PrefixSumInt32(p, src, dst)
		for i := range dst {
			if dst[i] != base[i] {
				t.Fatalf("p=%d: dst[%d]=%d want %d", p, i, dst[i], base[i])
			}
		}
	}
}
