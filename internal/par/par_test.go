package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7} {
		for _, n := range []int{0, 1, 2, 5, 100, 1000} {
			hit := make([]int32, n)
			For(p, n, func(i int) { atomic.AddInt32(&hit[i], 1) })
			for i, h := range hit {
				if h != 1 {
					t.Fatalf("p=%d n=%d: index %d visited %d times", p, n, i, h)
				}
			}
		}
	}
}

func TestForBlocksPartition(t *testing.T) {
	for _, p := range []int{1, 2, 4, 16} {
		n := 1003
		var covered int64
		ForBlocks(p, n, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad block [%d,%d)", lo, hi)
			}
			atomic.AddInt64(&covered, int64(hi-lo))
		})
		if covered != int64(n) {
			t.Fatalf("p=%d: covered %d of %d", p, covered, n)
		}
	}
}

func TestForBlocksEmptyAndNegative(t *testing.T) {
	called := false
	ForBlocks(4, 0, func(lo, hi int) { called = true })
	ForBlocks(4, -5, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body called for empty range")
	}
}

func TestForWorkersDistinctIDs(t *testing.T) {
	// Small n runs inline below the sequential grain (one block, worker 0);
	// n above the grain must fork into multiple blocks with distinct
	// worker indices in [0, p) and full coverage either way.
	for _, n := range []int{100, 100000} {
		p := 4
		seen := make([]int32, p)
		var covered int64
		ForWorkers(p, n, func(w, lo, hi int) {
			if w < 0 || w >= p {
				t.Errorf("n=%d: worker id %d out of range", n, w)
				return
			}
			atomic.AddInt32(&seen[w], 1)
			atomic.AddInt64(&covered, int64(hi-lo))
		})
		if covered != int64(n) {
			t.Fatalf("n=%d: covered %d", n, covered)
		}
		for w := 0; w < p; w++ {
			if seen[w] > 1 {
				t.Fatalf("n=%d: worker %d ran %d blocks, want <= 1", n, w, seen[w])
			}
		}
		if n == 100 && seen[0] != 1 {
			t.Fatalf("small n should run inline on worker 0")
		}
		if n == 100000 {
			blocks := 0
			for _, s := range seen {
				blocks += int(s)
			}
			if blocks != p {
				t.Fatalf("n=%d: forked %d blocks, want %d", n, blocks, p)
			}
		}
	}
}

func TestForDynamicCoversAll(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		for _, grain := range []int{1, 3, 64} {
			n := 777
			hit := make([]int32, n)
			ForDynamic(p, n, grain, func(i int) { atomic.AddInt32(&hit[i], 1) })
			for i, h := range hit {
				if h != 1 {
					t.Fatalf("p=%d grain=%d: index %d visited %d times", p, grain, i, h)
				}
			}
		}
	}
}

func TestReduceInt64(t *testing.T) {
	for _, p := range []int{1, 2, 4, 9} {
		n := 1234
		got := ReduceInt64(p, n, func(i int) int64 { return int64(i) })
		want := int64(n) * int64(n-1) / 2
		if got != want {
			t.Fatalf("p=%d: sum=%d want %d", p, got, want)
		}
	}
}

func TestReduceInt64Empty(t *testing.T) {
	if got := ReduceInt64(4, 0, func(i int) int64 { return 1 }); got != 0 {
		t.Fatalf("empty reduce = %d", got)
	}
}

func TestReduceFloat64(t *testing.T) {
	n := 1000
	got := ReduceFloat64(3, n, func(i int) float64 { return 0.5 })
	if got != float64(n)/2 {
		t.Fatalf("got %v", got)
	}
}

func TestCount(t *testing.T) {
	n := 1000
	got := Count(4, n, func(i int) bool { return i%3 == 0 })
	want := 334 // 0,3,...,999
	if got != want {
		t.Fatalf("Count=%d want %d", got, want)
	}
}

func TestMaxMin(t *testing.T) {
	vals := []int64{5, -2, 9, 3, 9, -7, 0}
	n := len(vals)
	for _, p := range []int{1, 2, 4} {
		if got := MaxInt64(p, n, -1<<62, func(i int) int64 { return vals[i] }); got != 9 {
			t.Fatalf("max=%d", got)
		}
		if got := MinInt64(p, n, 1<<62, func(i int) int64 { return vals[i] }); got != -7 {
			t.Fatalf("min=%d", got)
		}
	}
	if got := MaxInt64(4, 0, -42, func(i int) int64 { return 0 }); got != -42 {
		t.Fatalf("empty max=%d want default", got)
	}
}

func TestPrefixSumMatchesSequential(t *testing.T) {
	check := func(seed int64, nRaw uint16) bool {
		n := int(nRaw % 2000)
		src := make([]int32, n)
		s := seed
		for i := range src {
			s = s*6364136223846793005 + 1442695040888963407
			src[i] = int32(s % 100)
			if src[i] < 0 {
				src[i] = -src[i]
			}
		}
		want := make([]int64, n+1)
		var run int64
		for i, v := range src {
			want[i] = run
			run += int64(v)
		}
		want[n] = run
		for _, p := range []int{1, 2, 4} {
			dst := make([]int64, n+1)
			total := PrefixSumInt32(p, src, dst)
			if total != run {
				return false
			}
			for i := range want {
				if dst[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixSumPanicsOnBadDst(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched dst length")
		}
	}()
	PrefixSumInt32(1, make([]int32, 5), make([]int64, 5))
}

func TestPackPreservesOrder(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		n := 500
		got := Pack(p, n, func(i int) bool { return i%7 == 0 })
		want := 0
		for i := 0; i < n; i += 7 {
			if int(got[want]) != i {
				t.Fatalf("p=%d: got[%d]=%d want %d", p, want, got[want], i)
			}
			want++
		}
		if len(got) != want {
			t.Fatalf("p=%d: len=%d want %d", p, len(got), want)
		}
	}
}

func TestPackAllAndNone(t *testing.T) {
	n := 100
	all := Pack(4, n, func(i int) bool { return true })
	if len(all) != n {
		t.Fatalf("all: len=%d", len(all))
	}
	none := Pack(4, n, func(i int) bool { return false })
	if len(none) != 0 {
		t.Fatalf("none: len=%d", len(none))
	}
	if Pack(4, 0, func(i int) bool { return true }) != nil {
		t.Fatal("empty pack should be nil")
	}
}

func TestDecrementAndFetch(t *testing.T) {
	var c int32 = 100
	For(4, 100, func(i int) { DecrementAndFetch(&c) })
	if c != 0 {
		t.Fatalf("counter = %d, want 0", c)
	}
}

func TestJoinExactlyOneWinner(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		var c int32 = 64
		var winners int32
		For(4, 64, func(i int) {
			if Join(&c) {
				atomic.AddInt32(&winners, 1)
			}
		})
		if winners != 1 {
			t.Fatalf("trial %d: %d winners, want exactly 1", trial, winners)
		}
	}
}

func TestClampProcs(t *testing.T) {
	if got := clampProcs(0, 10); got < 1 {
		t.Fatalf("clampProcs(0,10)=%d", got)
	}
	if got := clampProcs(100, 3); got != 3 {
		t.Fatalf("clampProcs(100,3)=%d want 3", got)
	}
	if got := clampProcs(-1, 5); got < 1 {
		t.Fatalf("clampProcs(-1,5)=%d", got)
	}
}

func TestDefaultProcsPositive(t *testing.T) {
	if DefaultProcs() < 1 {
		t.Fatal("DefaultProcs < 1")
	}
}

func TestFetchAdd64(t *testing.T) {
	var c int64
	For(4, 1000, func(i int) { FetchAdd64(&c, 2) })
	if c != 2000 {
		t.Fatalf("c=%d", c)
	}
}

func BenchmarkReduce(b *testing.B) {
	n := 1 << 20
	for i := 0; i < b.N; i++ {
		ReduceInt64(DefaultProcs(), n, func(i int) int64 { return int64(i & 7) })
	}
}

func BenchmarkPrefixSum(b *testing.B) {
	n := 1 << 20
	src := make([]int32, n)
	dst := make([]int64, n+1)
	for i := range src {
		src[i] = int32(i & 15)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PrefixSumInt32(DefaultProcs(), src, dst)
	}
}

// TestCtxErrDeadlineUnderSingleProc pins the GOMAXPROCS=1 starvation
// fix (PR 2's wall-clock check in CtxErr): with a single P and a busy
// compute loop that never yields, the runtime may never schedule the
// context's internal timer goroutine, so ctx.Err() alone can stay nil
// long past the deadline. CtxErr compares against the deadline
// wall-clock directly, which bounds the cancellation latency of every
// round loop that polls it — this test fails if that check is ever
// removed (the busy loop would spin until the scheduler happens to
// run the timer, far past the latency bound asserted here).
func TestCtxErrDeadlineUnderSingleProc(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)

	const deadline = 50 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()

	start := time.Now()
	var spins int64
	for {
		if err := CtxErr(ctx); err != nil {
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("CtxErr = %v, want DeadlineExceeded", err)
			}
			break
		}
		spins++ // busy loop: no sleeps, no channel ops, nothing that yields
		if time.Since(start) > 10*time.Second {
			t.Fatal("CtxErr never observed the expired deadline under GOMAXPROCS=1")
		}
	}
	elapsed := time.Since(start)
	// (No lower-bound assertion: start is stamped a hair after the
	// deadline was armed, so elapsed may read epsilon under it.)
	// The wall-clock check fires on the first poll past the deadline;
	// anything near a second means we waited for the starved timer
	// goroutine instead. 2s is lax enough for a loaded CI box.
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation latency %v under GOMAXPROCS=1 (deadline %v, %d polls) — wall-clock check regressed",
			elapsed, deadline, spins)
	}
}
