package par

import (
	"sync"
	"sync/atomic"
)

// Scheduling constants. A fork-join region whose estimated work (items ×
// cost hint, or summed arc weight for the weighted variants) is below
// seqGrain runs inline on the calling goroutine: small JP frontiers and
// late ADG batches must not pay dispatch latency at all. Above the grain,
// the block count is additionally capped so every block carries at least
// minBlockWork units, keeping dispatch overhead sublinear in p.
const (
	seqGrain     = 4096
	minBlockWork = 2048
)

// PoolStats is a snapshot of a Pool's scheduling counters (monotonically
// increasing over the pool's lifetime; subtract two snapshots to scope a
// measurement). The harness records these per run and colorbench reports
// them, giving the same visibility into scheduler behavior that the
// paper's work/depth accounting gives into the algorithms.
type PoolStats struct {
	// Forks counts fork-join regions that actually forked (≥ 2 blocks).
	Forks int64
	// Dispatches counts blocks handed to parked pool workers.
	Dispatches int64
	// InlineBlocks counts blocks the forking goroutine ran itself (its
	// own leading block, plus overflow blocks when the queue was full).
	InlineBlocks int64
	// SeqCutoffHits counts calls that wanted parallelism (p > 1 after
	// clamping) but ran entirely inline because the estimated work was
	// below the sequential grain.
	SeqCutoffHits int64
}

// task is one block of a fork assigned to a worker.
type task struct {
	f      *fork
	worker int
	lo, hi int
}

// fork is the join state of one fork-join region. Instances are recycled
// through a sync.Pool so steady-state forking does not allocate.
type fork struct {
	body    func(worker, lo, hi int)
	pending int32
	done    chan struct{}
}

var forkCache = sync.Pool{New: func() interface{} {
	return &fork{done: make(chan struct{}, 1)}
}}

// finishOne retires one block and signals the join when it was the last.
func (f *fork) finishOne() {
	if atomic.AddInt32(&f.pending, -1) == 0 {
		f.done <- struct{}{}
	}
}

// Pool is a persistent fork-join scheduler: procs long-lived workers park
// on a shared task channel and execute blocks of fork-join regions without
// per-call goroutine creation. The forking goroutine always executes its
// leading block itself and, while joining, helps drain the task queue, so
// nested forks (a loop body that itself calls into the pool) cannot
// deadlock and a fork never waits on an idle queue.
//
// All Pool methods are safe for concurrent use from multiple goroutines;
// concurrent forks interleave over the same workers.
type Pool struct {
	procs int
	tasks chan task

	forks         int64
	dispatches    int64
	inlineBlocks  int64
	seqCutoffHits int64

	closeOnce sync.Once
}

// NewPool starts a pool with p parked workers (p <= 0: DefaultProcs()).
// Call Close to release the workers; the process-wide Default pool is
// never closed.
func NewPool(p int) *Pool {
	if p <= 0 {
		p = DefaultProcs()
	}
	pl := &Pool{
		procs: p,
		tasks: make(chan task, 8*p+64),
	}
	for i := 0; i < p; i++ {
		go pl.worker()
	}
	return pl
}

func (pl *Pool) worker() {
	for t := range pl.tasks {
		t.f.body(t.worker, t.lo, t.hi)
		t.f.finishOne()
	}
}

// Procs returns the number of parked workers.
func (pl *Pool) Procs() int { return pl.procs }

// Close releases the workers: they drain any queued blocks and exit.
// Forks already in flight still complete (their owners join on the done
// signal), but no new fork may be started after Close.
func (pl *Pool) Close() {
	pl.closeOnce.Do(func() { close(pl.tasks) })
}

// Stats returns a snapshot of the scheduling counters.
func (pl *Pool) Stats() PoolStats {
	return PoolStats{
		Forks:         atomic.LoadInt64(&pl.forks),
		Dispatches:    atomic.LoadInt64(&pl.dispatches),
		InlineBlocks:  atomic.LoadInt64(&pl.inlineBlocks),
		SeqCutoffHits: atomic.LoadInt64(&pl.seqCutoffHits),
	}
}

var (
	defaultOnce sync.Once
	defaultPool *Pool
)

// Default returns the process-wide pool (created on first use with
// DefaultProcs() workers). The package-level For/Reduce/Scan free
// functions are thin wrappers over it, so every call site in the
// repository shares one persistent scheduler; Config.Procs sweeps reuse
// the same workers across runs.
func Default() *Pool {
	defaultOnce.Do(func() { defaultPool = NewPool(0) })
	return defaultPool
}

// DefaultPoolStats snapshots the default pool's counters.
func DefaultPoolStats() PoolStats { return Default().Stats() }

// planUniform computes block boundaries for n items of uniform cost.
// It returns nil when the region should run inline: p clamps to 1, or the
// estimated work n·cost is under the sequential grain. Boundaries are a
// pure function of (p, n, cost), so any blocking-dependent output (Pack
// order, per-block scratch) is independent of scheduling and timing.
func (pl *Pool) planUniform(p, n int, cost int64) []int {
	p = clampProcs(p, n)
	if p == 1 {
		return nil
	}
	if cost < 1 {
		cost = 1
	}
	work := int64(n) * cost
	if work < seqGrain {
		atomic.AddInt64(&pl.seqCutoffHits, 1)
		return nil
	}
	if maxB := int(work/minBlockWork) + 1; p > maxB {
		p = maxB
	}
	if p == 1 {
		return nil
	}
	chunk := (n + p - 1) / p
	bounds := make([]int, 1, p+1)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		bounds = append(bounds, hi)
	}
	return bounds
}

// planWeighted computes block boundaries over [0, n) so that every block
// carries roughly equal weight, where the weight of [lo, hi) is
// prefix[hi] - prefix[lo] + (hi - lo). prefix must be a monotone prefix-
// weight array of length n+1 (a CSR offset array qualifies directly).
// Boundaries are found by binary search on the strictly increasing
// function prefix[i] + i, the §V-A edge-balanced split. Returns nil when
// the region should run inline.
func (pl *Pool) planWeighted(p, n int, prefix []int64) []int {
	p = clampProcs(p, n)
	if p == 1 {
		return nil
	}
	base := prefix[0]
	work := prefix[n] - base + int64(n)
	if work < seqGrain {
		atomic.AddInt64(&pl.seqCutoffHits, 1)
		return nil
	}
	if maxB := int(work/minBlockWork) + 1; p > maxB {
		p = maxB
	}
	if p == 1 {
		return nil
	}
	bounds := make([]int, 1, p+1)
	target := (work + int64(p) - 1) / int64(p)
	prev := 0
	for b := 1; b < p; b++ {
		goal := int64(b) * target
		// Smallest i with prefix[i]-base+i >= goal, searched in (prev, n].
		lo, hi := prev+1, n
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if prefix[mid]-base+int64(mid) < goal {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo >= n {
			break
		}
		bounds = append(bounds, lo)
		prev = lo
	}
	bounds = append(bounds, n)
	return bounds
}

// runBounds executes body over the blocks delimited by bounds (len k+1,
// bounds[0] == 0): the caller runs block 0 inline and dispatches blocks
// 1..k-1 to parked workers, falling back to inline execution when the
// queue is full, then joins while helping drain the queue.
func (pl *Pool) runBounds(bounds []int, body func(worker, lo, hi int)) {
	k := len(bounds) - 1
	if k == 1 {
		body(0, bounds[0], bounds[1])
		return
	}
	atomic.AddInt64(&pl.forks, 1)
	f := forkCache.Get().(*fork)
	f.body = body
	atomic.StoreInt32(&f.pending, int32(k-1))
	dispatched := 0
	for w := 1; w < k; w++ {
		select {
		case pl.tasks <- task{f: f, worker: w, lo: bounds[w], hi: bounds[w+1]}:
			dispatched++
		default:
			body(w, bounds[w], bounds[w+1])
			f.finishOne()
		}
	}
	atomic.AddInt64(&pl.dispatches, int64(dispatched))
	atomic.AddInt64(&pl.inlineBlocks, int64(k-dispatched))
	body(0, bounds[0], bounds[1])
	// Helping join: run queued blocks (of this or any concurrent fork)
	// until our own last block retires. This keeps nested forks live and
	// puts the joining goroutine to work instead of blocking it.
	for {
		select {
		case <-f.done:
			f.body = nil
			forkCache.Put(f)
			return
		case t, ok := <-pl.tasks:
			if !ok {
				// Pool closed mid-join: the queue is drained, so our
				// remaining blocks are already running on workers —
				// block on the join signal alone.
				<-f.done
				f.body = nil
				forkCache.Put(f)
				return
			}
			t.f.body(t.worker, t.lo, t.hi)
			t.f.finishOne()
		}
	}
}

// ForBlocks is the pool-scoped ForBlocks: at most p contiguous blocks,
// run via the persistent workers (inline below the sequential grain).
func (pl *Pool) ForBlocks(p, n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	bounds := pl.planUniform(p, n, 1)
	if bounds == nil {
		body(0, n)
		return
	}
	pl.runBounds(bounds, func(_, lo, hi int) { body(lo, hi) })
}

// For is the pool-scoped element-wise parallel loop.
func (pl *Pool) For(p, n int, body func(i int)) {
	pl.ForBlocks(p, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForWorkers is the pool-scoped ForWorkers: body additionally receives
// the block index in [0, p'), p' <= p, for per-worker scratch.
func (pl *Pool) ForWorkers(p, n int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	bounds := pl.planUniform(p, n, 1)
	if bounds == nil {
		body(0, 0, n)
		return
	}
	pl.runBounds(bounds, body)
}

// ForWorkersCost is ForWorkers with an explicit per-item cost hint used
// by the adaptive sequential cutoff: loops whose body touches several
// cache lines per item (hash draws, bitmap probes) should pass a larger
// hint so they fork even for moderate n.
func (pl *Pool) ForWorkersCost(p, n int, cost int64, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	bounds := pl.planUniform(p, n, cost)
	if bounds == nil {
		body(0, 0, n)
		return
	}
	pl.runBounds(bounds, body)
}

// ForBlocksWeighted partitions the CSR vertex range [0, len(offsets)-1)
// into at most p blocks of roughly equal arc count (edge-balanced, found
// by binary search on the offset array) and runs body on each block.
// Contiguous vertex-count chunking load-imbalances badly on skew-heavy
// graphs; this is the degree-aware split that fixes it.
func (pl *Pool) ForBlocksWeighted(p int, offsets []int64, body func(lo, hi int)) {
	n := len(offsets) - 1
	if n <= 0 {
		return
	}
	bounds := pl.planWeighted(p, n, offsets)
	if bounds == nil {
		body(0, n)
		return
	}
	pl.runBounds(bounds, func(_, lo, hi int) { body(lo, hi) })
}

// ForWorkersWeighted is ForBlocksWeighted with the block index passed to
// body for per-worker scratch.
func (pl *Pool) ForWorkersWeighted(p int, offsets []int64, body func(worker, lo, hi int)) {
	n := len(offsets) - 1
	if n <= 0 {
		return
	}
	bounds := pl.planWeighted(p, n, offsets)
	if bounds == nil {
		body(0, 0, n)
		return
	}
	pl.runBounds(bounds, body)
}

// ForWorkersWeightedBy is the weighted loop over an indexed collection
// (a frontier, a batch) with per-item weights — typically the degree of
// frontier[i]. It materializes the weight prefix once (O(n)) and then
// splits edge-balanced like ForWorkersWeighted. scratch, when non-nil,
// supplies the prefix buffer (len >= n+1) so per-round callers can avoid
// reallocating it.
func (pl *Pool) ForWorkersWeightedBy(p, n int, scratch []int64, weight func(i int) int64, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	p = clampProcs(p, n)
	if p == 1 {
		body(0, 0, n)
		return
	}
	var prefix []int64
	if len(scratch) >= n+1 {
		prefix = scratch[:n+1]
	} else {
		prefix = make([]int64, n+1)
	}
	var run int64
	for i := 0; i < n; i++ {
		prefix[i] = run
		run += weight(i)
	}
	prefix[n] = run
	bounds := pl.planWeighted(p, n, prefix)
	if bounds == nil {
		body(0, 0, n)
		return
	}
	pl.runBounds(bounds, body)
}

// ForWeightedBy is the element-wise form of ForWorkersWeightedBy.
func (pl *Pool) ForWeightedBy(p, n int, weight func(i int) int64, body func(i int)) {
	pl.ForWorkersWeightedBy(p, n, nil, weight, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForDynamic is the pool-scoped dynamic (grabbed) loop in grain-sized
// chunks, for irregular per-iteration cost with no useful weight oracle.
func (pl *Pool) ForDynamic(p, n, grain int, body func(i int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	bounds := pl.planUniform(p, n, 1)
	if bounds == nil {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var next int64
	pl.runBounds(bounds, func(_, _, _ int) {
		for {
			lo := int(atomic.AddInt64(&next, int64(grain))) - grain
			if lo >= n {
				return
			}
			hi := lo + grain
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				body(i)
			}
		}
	})
}

// ReduceInt64 is the pool-scoped sum reduction.
func (pl *Pool) ReduceInt64(p, n int, f func(i int) int64) int64 {
	if n <= 0 {
		return 0
	}
	bounds := pl.planUniform(p, n, 1)
	if bounds == nil {
		var s int64
		for i := 0; i < n; i++ {
			s += f(i)
		}
		return s
	}
	partial := make([]int64, len(bounds)-1)
	pl.runBounds(bounds, func(w, lo, hi int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += f(i)
		}
		partial[w] = s
	})
	var total int64
	for _, s := range partial {
		total += s
	}
	return total
}

// ReduceFloat64 is the pool-scoped sum reduction for float64 values.
func (pl *Pool) ReduceFloat64(p, n int, f func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	bounds := pl.planUniform(p, n, 1)
	if bounds == nil {
		var s float64
		for i := 0; i < n; i++ {
			s += f(i)
		}
		return s
	}
	partial := make([]float64, len(bounds)-1)
	pl.runBounds(bounds, func(w, lo, hi int) {
		var s float64
		for i := lo; i < hi; i++ {
			s += f(i)
		}
		partial[w] = s
	})
	var total float64
	for _, s := range partial {
		total += s
	}
	return total
}

// MaxInt64 is the pool-scoped max reduction; returns def for n == 0.
func (pl *Pool) MaxInt64(p, n int, def int64, f func(i int) int64) int64 {
	return pl.extremeInt64(p, n, def, f, false)
}

// MinInt64 is the pool-scoped min reduction; returns def for n == 0.
// Implemented directly (not as -Max of -f, whose negation overflows for
// math.MinInt64 inputs or defaults).
func (pl *Pool) MinInt64(p, n int, def int64, f func(i int) int64) int64 {
	return pl.extremeInt64(p, n, def, f, true)
}

func (pl *Pool) extremeInt64(p, n int, def int64, f func(i int) int64, min bool) int64 {
	if n <= 0 {
		return def
	}
	better := func(v, m int64) bool {
		if min {
			return v < m
		}
		return v > m
	}
	bounds := pl.planUniform(p, n, 1)
	if bounds == nil {
		m := def
		for i := 0; i < n; i++ {
			if v := f(i); better(v, m) {
				m = v
			}
		}
		return m
	}
	partial := make([]int64, len(bounds)-1)
	for i := range partial {
		partial[i] = def
	}
	pl.runBounds(bounds, func(w, lo, hi int) {
		m := def
		for i := lo; i < hi; i++ {
			if v := f(i); better(v, m) {
				m = v
			}
		}
		partial[w] = m
	})
	m := def
	for _, v := range partial {
		if better(v, m) {
			m = v
		}
	}
	return m
}

// PrefixSumInt32 is the pool-scoped exclusive scan (see the free
// function for the contract). The block structure is derived from one
// plan and shared by both passes, so per-block partial sums always line
// up with the blocks that produced them.
func (pl *Pool) PrefixSumInt32(p int, src []int32, dst []int64) int64 {
	n := len(src)
	if len(dst) != n+1 {
		panic("par: PrefixSumInt32 requires len(dst) == len(src)+1")
	}
	if n == 0 {
		dst[0] = 0
		return 0
	}
	bounds := pl.planUniform(p, n, 1)
	if bounds == nil {
		var run int64
		for i, v := range src {
			dst[i] = run
			run += int64(v)
		}
		dst[n] = run
		return run
	}
	k := len(bounds) - 1
	sums := make([]int64, k)
	pl.runBounds(bounds, func(w, lo, hi int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(src[i])
		}
		sums[w] = s
	})
	var run int64
	for i, s := range sums {
		sums[i] = run
		run += s
	}
	total := run
	pl.runBounds(bounds, func(w, lo, hi int) {
		acc := sums[w]
		for i := lo; i < hi; i++ {
			dst[i] = acc
			acc += int64(src[i])
		}
	})
	dst[n] = total
	return total
}

// Pack is the pool-scoped Filter/Pack primitive; output order is
// ascending regardless of p or scheduling.
func (pl *Pool) Pack(p, n int, keep func(i int) bool) []uint32 {
	if n <= 0 {
		return nil
	}
	bounds := pl.planUniform(p, n, 1)
	if bounds == nil {
		out := make([]uint32, 0, 16)
		for i := 0; i < n; i++ {
			if keep(i) {
				out = append(out, uint32(i))
			}
		}
		return out
	}
	k := len(bounds) - 1
	counts := make([]int32, k)
	pl.runBounds(bounds, func(w, lo, hi int) {
		var c int32
		for i := lo; i < hi; i++ {
			if keep(i) {
				c++
			}
		}
		counts[w] = c
	})
	offsets := make([]int64, k+1)
	total := pl.PrefixSumInt32(1, counts, offsets)
	out := make([]uint32, total)
	pl.runBounds(bounds, func(w, lo, hi int) {
		pos := offsets[w]
		for i := lo; i < hi; i++ {
			if keep(i) {
				out[pos] = uint32(i)
				pos++
			}
		}
	})
	return out
}
