package order

import (
	"context"
	"errors"
	"testing"

	"repro/internal/gen"
)

// TestADGContextCancelled checks cancellation across the ADG variants:
// a cancelled context aborts the peeling loop with ctx.Err(), and a
// background context matches the non-context entry point.
func TestADGContextCancelled(t *testing.T) {
	g, err := gen.Kronecker(10, 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []ADGOptions{
		{Epsilon: 0.01, Seed: 1},
		{Epsilon: 0.01, Seed: 1, Sorted: true},
		{Median: true, Seed: 1},
	} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		o, err := ADGContext(ctx, g, opts)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("opts %+v: want context.Canceled, got %v", opts, err)
		}
		if o != nil {
			t.Fatalf("opts %+v: cancelled ADG must not return a partial ordering", opts)
		}

		o, err = ADGContext(context.Background(), g, opts)
		if err != nil {
			t.Fatal(err)
		}
		want := ADG(g, opts)
		if o.Iterations != want.Iterations || len(o.Keys) != len(want.Keys) {
			t.Fatalf("opts %+v: ADGContext diverges from ADG", opts)
		}
		for v := range want.Keys {
			if o.Keys[v] != want.Keys[v] {
				t.Fatalf("opts %+v: key mismatch at %d", opts, v)
			}
		}
	}
}
