// Package order implements the vertex-ordering heuristics of Table II:
// the classical FF, R, LF, LLF, ID, SL, SLL and ASL orderings, and the
// paper's contribution — the parallel approximate degeneracy orderings
// ADG (Algorithm 1), ADG-M (§V-D) and ADG-O (Algorithm 6).
//
// An Ordering assigns every vertex a 64-bit priority key
//
//	key[v] = rank[v] << 32 | tie[v]
//
// where rank is the heuristic's primary value (degree, removal round, …)
// and tie is a random permutation of 0..n-1 (the paper's ρ = ⟨ρ_X, ρ_R⟩
// with random tie-breaking, §IV-A). Keys are therefore a collision-free
// total order and the Jones–Plassmann DAG they induce is acyclic.
// JP colors vertices with larger keys first.
package order

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/xrand"
)

// Ordering is a total priority order on the vertices of a graph.
type Ordering struct {
	// Name identifies the heuristic (for reporting).
	Name string
	// Keys holds the composite priority; higher key = colored earlier.
	Keys []uint64
	// Rank is the primary (coarse) component of Keys. Vertices sharing a
	// rank form one batch of the partial order (ADG's R(i) sets).
	Rank []uint32
	// Partitions, when non-nil, lists the vertices of each rank class in
	// increasing rank order (ADG's low-degree partitions, used by DEC-ADG).
	Partitions [][]uint32
	// Iterations is the number of parallel rounds the heuristic performed
	// (the depth proxy reported in Table II).
	Iterations int
	// PredCount, when non-nil, is the fused JP in-degree: the number of
	// neighbors with a strictly higher key (ADG-O's rank array, §V-C).
	PredCount []int32
}

// NewFromRanks builds a total order from per-vertex ranks with random
// tie-breaking seeded by seed.
func NewFromRanks(name string, ranks []uint32, seed uint64) *Ordering {
	n := len(ranks)
	perm := xrand.New(seed).Perm(n, nil)
	keys := make([]uint64, n)
	par.For(par.DefaultProcs(), n, func(v int) {
		keys[v] = uint64(ranks[v])<<32 | uint64(perm[v])
	})
	return &Ordering{Name: name, Keys: keys, Rank: ranks}
}

// Validate checks structural invariants: matching lengths, key uniqueness
// (total order), Keys consistent with Rank, and Partitions consistent with
// Rank when present.
func (o *Ordering) Validate(g *graph.Graph) error {
	n := g.NumVertices()
	if len(o.Keys) != n || len(o.Rank) != n {
		return fmt.Errorf("order %s: lengths keys=%d rank=%d, n=%d", o.Name, len(o.Keys), len(o.Rank), n)
	}
	seen := make(map[uint64]bool, n)
	for v := 0; v < n; v++ {
		if uint32(o.Keys[v]>>32) != o.Rank[v] {
			return fmt.Errorf("order %s: key/rank mismatch at %d", o.Name, v)
		}
		if seen[o.Keys[v]] {
			return fmt.Errorf("order %s: duplicate key at %d", o.Name, v)
		}
		seen[o.Keys[v]] = true
	}
	if o.Partitions != nil {
		total := 0
		for i, part := range o.Partitions {
			for _, v := range part {
				if int(v) >= n {
					return fmt.Errorf("order %s: partition %d has bad vertex %d", o.Name, i, v)
				}
				if int(o.Rank[v]) != i {
					return fmt.Errorf("order %s: vertex %d in partition %d has rank %d", o.Name, v, i, o.Rank[v])
				}
			}
			total += len(part)
		}
		if total != n {
			return fmt.Errorf("order %s: partitions cover %d of %d vertices", o.Name, total, n)
		}
	}
	return nil
}

// MaxEqualOrHigherRankNeighbors returns max over v of |{u ∈ N(v):
// rank[u] >= rank[v]}| — the quantity bounded by k·d for a partial
// k-approximate degeneracy ordering (§II-B). Dividing by the exact
// degeneracy gives the measured approximation factor.
func MaxEqualOrHigherRankNeighbors(g *graph.Graph, rank []uint32) int {
	n := g.NumVertices()
	return int(par.MaxInt64(par.DefaultProcs(), n, 0, func(v int) int64 {
		c := int64(0)
		rv := rank[v]
		for _, u := range g.Neighbors(uint32(v)) {
			if rank[u] >= rv {
				c++
			}
		}
		return c
	}))
}

// MaxPredecessors returns the maximum JP DAG in-degree under Keys:
// max over v of |{u ∈ N(v): key[u] > key[v]}|. By Lemma 6 the JP coloring
// uses at most MaxPredecessors+1 colors.
func MaxPredecessors(g *graph.Graph, keys []uint64) int {
	n := g.NumVertices()
	return int(par.MaxInt64(par.DefaultProcs(), n, 0, func(v int) int64 {
		c := int64(0)
		kv := keys[v]
		for _, u := range g.Neighbors(uint32(v)) {
			if keys[u] > kv {
				c++
			}
		}
		return c
	}))
}

// PredCounts computes the JP DAG in-degree of every vertex under Keys.
// Blocks are edge-balanced over the CSR offsets: the cost of a vertex is
// its adjacency scan, not a constant.
func PredCounts(g *graph.Graph, keys []uint64, p int) []int32 {
	n := g.NumVertices()
	counts := make([]int32, n)
	par.ForBlocksWeighted(p, g.Offsets(), func(lo, hi int) {
		for v := lo; v < hi; v++ {
			c := int32(0)
			kv := keys[v]
			for _, u := range g.Neighbors(uint32(v)) {
				if keys[u] > kv {
					c++
				}
			}
			counts[v] = c
		}
	})
	return counts
}

// LongestPath returns the length (in vertices) of the longest directed path
// in the DAG induced by Keys — the |P| of Lemma 7 that governs JP's depth.
// Computed by DP over vertices in decreasing key order; O(n log n + m).
func LongestPath(g *graph.Graph, keys []uint64) int {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	idx := make([]uint32, n)
	for i := range idx {
		idx[i] = uint32(i)
	}
	// Sort by decreasing key.
	sorted := make([]uint64, n)
	for v := 0; v < n; v++ {
		sorted[v] = ^keys[v]
	}
	orderIdx := argsortUint64(sorted, idx)
	depth := make([]int32, n)
	best := int32(0)
	for _, v := range orderIdx {
		d := int32(1)
		kv := keys[v]
		for _, u := range g.Neighbors(v) {
			if keys[u] > kv && depth[u]+1 > d {
				d = depth[u] + 1
			}
		}
		depth[v] = d
		if d > best {
			best = d
		}
	}
	return int(best)
}

// argsortUint64 sorts idx by ascending vals[idx[i]] and returns idx.
func argsortUint64(vals []uint64, idx []uint32) []uint32 {
	keys := make([]uint64, len(idx))
	for i, v := range idx {
		keys[i] = vals[v]
	}
	// Simple pairing: reuse radix pair sort from sortutil would add a
	// dependency cycle risk; inline LSD radix over (key, idx).
	radixPairs(keys, idx)
	return idx
}

func radixPairs(keys []uint64, vals []uint32) {
	n := len(keys)
	if n <= 1 {
		return
	}
	kbuf := make([]uint64, n)
	vbuf := make([]uint32, n)
	ksrc, kdst := keys, kbuf
	vsrc, vdst := vals, vbuf
	for shift := uint(0); shift < 64; shift += 8 {
		var counts [257]int
		lo, hi := uint64(255), uint64(0)
		for _, k := range ksrc {
			b := (k >> shift) & 255
			counts[b+1]++
			if b < lo {
				lo = b
			}
			if b > hi {
				hi = b
			}
		}
		if lo == hi {
			continue
		}
		for i := 1; i < 257; i++ {
			counts[i] += counts[i-1]
		}
		for i, k := range ksrc {
			b := (k >> shift) & 255
			kdst[counts[b]] = k
			vdst[counts[b]] = vsrc[i]
			counts[b]++
		}
		ksrc, kdst = kdst, ksrc
		vsrc, vdst = vdst, vsrc
	}
	if &ksrc[0] != &keys[0] {
		copy(keys, ksrc)
		copy(vals, vsrc)
	}
}
