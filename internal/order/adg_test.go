package order

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/kcore"
)

// testGraphs builds a small zoo of structurally diverse graphs.
func testGraphs(t testing.TB) map[string]*graph.Graph {
	t.Helper()
	out := map[string]*graph.Graph{}
	add := func(name string) func(*graph.Graph, error) {
		return func(g *graph.Graph, err error) {
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			out[name] = g
		}
	}
	add("er")(gen.ErdosRenyiGNM(400, 1600, 1, 2))
	add("kron")(gen.Kronecker(9, 8, 2, 2))
	add("ba")(gen.BarabasiAlbert(500, 4, 3, 2))
	add("grid")(gen.Grid2D(20, 20, 2))
	add("star")(gen.Star(200, 2))
	add("clique")(gen.Complete(30, 2))
	add("path")(gen.Path(100, 2))
	add("comm")(gen.Community(200, 4, 0.4, 200, 4, 2))
	add("bip")(gen.CompleteBipartite(10, 40, 2))
	add("edgeless")(func() (*graph.Graph, error) { return graph.FromEdges(10, nil, 1) }())
	add("empty")(func() (*graph.Graph, error) { return graph.FromEdges(0, nil, 1) }())
	return out
}

func adgVariants() map[string]ADGOptions {
	return map[string]ADGOptions{
		"ADG-eps0.01":  {Epsilon: 0.01, Procs: 2, Seed: 7},
		"ADG-eps0.1":   {Epsilon: 0.1, Procs: 2, Seed: 7},
		"ADG-eps1":     {Epsilon: 1, Procs: 2, Seed: 7},
		"ADG-CREW":     {Epsilon: 0.1, Procs: 2, Seed: 7, CREW: true},
		"ADG-M":        {Procs: 2, Seed: 7, Median: true},
		"ADG-O-eps0.1": {Epsilon: 0.1, Procs: 2, Seed: 7, Sorted: true},
		"ADG-M-O":      {Procs: 2, Seed: 7, Median: true, Sorted: true},
		"ADG-seq":      {Epsilon: 0.1, Procs: 1, Seed: 7},
		"ADG-O-seq":    {Epsilon: 0.1, Procs: 1, Seed: 7, Sorted: true},
	}
}

func TestADGValidOrdering(t *testing.T) {
	for gname, g := range testGraphs(t) {
		for vname, opts := range adgVariants() {
			o := ADG(g, opts)
			if err := o.Validate(g); err != nil {
				t.Errorf("%s/%s: %v", gname, vname, err)
			}
		}
	}
}

func TestADGApproximationFactor(t *testing.T) {
	// Lemma 4 / Lemma 15: the partial ordering is 2(1+ε)-approximate
	// (4-approximate for the median variant): every vertex has at most
	// bound·d neighbors with equal-or-higher rank.
	for gname, g := range testGraphs(t) {
		d := kcore.Degeneracy(g)
		if d == 0 {
			continue
		}
		for vname, opts := range adgVariants() {
			o := ADG(g, opts)
			got := MaxEqualOrHigherRankNeighbors(g, o.Rank)
			bound := ApproxFactorBound(opts) * float64(d)
			if float64(got) > bound+1e-9 {
				t.Errorf("%s/%s: max equal-or-higher neighbors %d > bound %.2f (d=%d)",
					gname, vname, got, bound, d)
			}
		}
	}
}

func TestADGIterationBound(t *testing.T) {
	// Lemma 1: O(log n) iterations; concretely ≤ ⌈log n / log(1+ε)⌉ + 1.
	for gname, g := range testGraphs(t) {
		n := g.NumVertices()
		if n == 0 {
			continue
		}
		for _, eps := range []float64{0.01, 0.1, 0.5, 1, 2} {
			o := ADG(g, ADGOptions{Epsilon: eps, Procs: 2, Seed: 1})
			bound := TheoreticalIterationBound(n, eps)
			if o.Iterations > bound {
				t.Errorf("%s eps=%v: %d iterations > bound %d", gname, eps, o.Iterations, bound)
			}
		}
	}
}

func TestADGMedianIterationBound(t *testing.T) {
	// Lemma 14: ADG-M halves the active set each round -> ≤ ⌈log2 n⌉+1.
	for gname, g := range testGraphs(t) {
		n := g.NumVertices()
		if n == 0 {
			continue
		}
		o := ADG(g, ADGOptions{Median: true, Procs: 2, Seed: 1})
		bound := 1
		for 1<<uint(bound) < n {
			bound++
		}
		bound += 2
		if o.Iterations > bound {
			t.Errorf("%s: ADG-M %d iterations > log2 bound %d", gname, o.Iterations, bound)
		}
	}
}

func TestADGPartitionsCoverAndOrder(t *testing.T) {
	g := testGraphs(t)["kron"]
	o := ADG(g, ADGOptions{Epsilon: 0.1, Procs: 2, Seed: 5})
	if o.Partitions == nil {
		t.Fatal("plain ADG must expose partitions")
	}
	if len(o.Partitions) != o.Iterations {
		t.Fatalf("partitions %d != iterations %d", len(o.Partitions), o.Iterations)
	}
	seen := make([]bool, g.NumVertices())
	for i, part := range o.Partitions {
		if len(part) == 0 {
			t.Fatalf("empty partition %d", i)
		}
		for _, v := range part {
			if seen[v] {
				t.Fatalf("vertex %d in two partitions", v)
			}
			seen[v] = true
		}
	}
	for v, s := range seen {
		if !s {
			t.Fatalf("vertex %d not in any partition", v)
		}
	}
}

func TestADGPushPullEquivalent(t *testing.T) {
	// CRCW (push) and CREW (pull) UPDATE must compute identical orderings:
	// same ranks in every iteration (Algorithm 1 vs Algorithm 2).
	for gname, g := range testGraphs(t) {
		a := ADG(g, ADGOptions{Epsilon: 0.1, Procs: 2, Seed: 9})
		b := ADG(g, ADGOptions{Epsilon: 0.1, Procs: 2, Seed: 9, CREW: true})
		for v := range a.Rank {
			if a.Rank[v] != b.Rank[v] {
				t.Errorf("%s: rank[%d] push=%d pull=%d", gname, v, a.Rank[v], b.Rank[v])
				break
			}
		}
	}
}

func TestADGDeterministicAcrossProcs(t *testing.T) {
	// The removal schedule is deterministic: ranks must not depend on the
	// worker count (Las Vegas randomness lives only in the seed).
	for gname, g := range testGraphs(t) {
		base := ADG(g, ADGOptions{Epsilon: 0.05, Seed: 11, Procs: 1})
		for _, p := range []int{2, 4} {
			o := ADG(g, ADGOptions{Epsilon: 0.05, Seed: 11, Procs: p})
			for v := range base.Rank {
				if base.Rank[v] != o.Rank[v] {
					t.Errorf("%s: rank[%d] differs between p=1 and p=%d", gname, v, p)
					break
				}
			}
		}
	}
}

func TestADGSortedIsTotalOrderByResidualDegree(t *testing.T) {
	// ADG-O: ranks are a permutation of 0..n-1 and within each removal the
	// batch is ordered by residual degree (checked indirectly: the measured
	// approximation factor cannot exceed plain ADG's bound).
	g := testGraphs(t)["ba"]
	o := ADG(g, ADGOptions{Epsilon: 0.1, Procs: 2, Seed: 3, Sorted: true})
	n := g.NumVertices()
	seen := make([]bool, n)
	for _, r := range o.Rank {
		if int(r) >= n || seen[r] {
			t.Fatal("ADG-O ranks are not a permutation")
		}
		seen[r] = true
	}
}

func TestADGSortedPredCountMatchesKeys(t *testing.T) {
	// §V-C: the fused rank array must equal the JP DAG in-degree computed
	// from the final keys.
	for gname, g := range testGraphs(t) {
		o := ADG(g, ADGOptions{Epsilon: 0.1, Procs: 2, Seed: 13, Sorted: true})
		want := PredCounts(g, o.Keys, 2)
		for v := range want {
			if o.PredCount[v] != want[v] {
				t.Errorf("%s: PredCount[%d]=%d want %d", gname, v, o.PredCount[v], want[v])
				break
			}
		}
	}
}

func TestADGEpsilonMonotoneIterations(t *testing.T) {
	// Fig. 3's mechanism: larger ε ⇒ no more iterations (usually fewer).
	g := testGraphs(t)["er"]
	prev := 1 << 30
	for _, eps := range []float64{0.01, 0.1, 0.5, 1, 4} {
		o := ADG(g, ADGOptions{Epsilon: eps, Procs: 2, Seed: 1})
		if o.Iterations > prev {
			t.Errorf("eps=%v: iterations %d > previous %d", eps, o.Iterations, prev)
		}
		prev = o.Iterations
	}
}

func TestADGNegativeEpsilonClamped(t *testing.T) {
	g := testGraphs(t)["path"]
	o := ADG(g, ADGOptions{Epsilon: -3, Procs: 1, Seed: 1})
	if err := o.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestADGRandomGraphsProperty(t *testing.T) {
	check := func(seed uint64, nRaw, mRaw uint8, median, sorted bool) bool {
		n := int(nRaw%60) + 2
		m := int64(mRaw) % 250
		g, err := gen.ErdosRenyiGNM(n, m, seed, 1)
		if err != nil {
			return false
		}
		opts := ADGOptions{Epsilon: 0.25, Procs: 2, Seed: seed, Median: median, Sorted: sorted}
		o := ADG(g, opts)
		if o.Validate(g) != nil {
			return false
		}
		d := kcore.Degeneracy(g)
		if d == 0 {
			return true
		}
		got := MaxEqualOrHigherRankNeighbors(g, o.Rank)
		return float64(got) <= ApproxFactorBound(opts)*float64(d)+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestTheoreticalIterationBound(t *testing.T) {
	if TheoreticalIterationBound(1, 0.5) != 1 {
		t.Fatal("n=1 bound")
	}
	if TheoreticalIterationBound(1000, 0) != 1000 {
		t.Fatal("eps=0 bound should degrade to n")
	}
	if b := TheoreticalIterationBound(1024, 1.0); b < 10 || b > 12 {
		t.Fatalf("log2 bound = %d", b)
	}
}

func TestApproxFactorBound(t *testing.T) {
	if got := ApproxFactorBound(ADGOptions{Epsilon: 0.5}); got != 3 {
		t.Fatalf("2(1+0.5)=%v", got)
	}
	if got := ApproxFactorBound(ADGOptions{Median: true}); got != 4 {
		t.Fatalf("median bound=%v", got)
	}
}

func BenchmarkADG(b *testing.B) {
	g, err := gen.Kronecker(13, 16, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		opts ADGOptions
	}{
		{"plain", ADGOptions{Epsilon: 0.01}},
		{"crew", ADGOptions{Epsilon: 0.01, CREW: true}},
		{"median", ADGOptions{Median: true}},
		{"sorted", ADGOptions{Epsilon: 0.01, Sorted: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ADG(g, cfg.opts)
			}
		})
	}
	_ = fmt.Sprint()
}

func TestADGCachedSumsEquivalent(t *testing.T) {
	// §V-F: incremental degree-sum maintenance must not change the
	// removal schedule — identical ranks, both UPDATE styles.
	for gname, g := range testGraphs(t) {
		for _, crew := range []bool{false, true} {
			base := ADG(g, ADGOptions{Epsilon: 0.1, Procs: 2, Seed: 9, CREW: crew})
			cached := ADG(g, ADGOptions{Epsilon: 0.1, Procs: 2, Seed: 9, CREW: crew, CacheDegreeSums: true})
			if base.Iterations != cached.Iterations {
				t.Errorf("%s crew=%v: iterations differ %d vs %d", gname, crew, base.Iterations, cached.Iterations)
			}
			for v := range base.Rank {
				if base.Rank[v] != cached.Rank[v] {
					t.Errorf("%s crew=%v: rank[%d] differs with cached sums", gname, crew, v)
					break
				}
			}
		}
	}
}

func TestADGSortAlgChoicesAllValid(t *testing.T) {
	// §V-B: radix, counting and quicksort orders all satisfy the ADG-O
	// contract (total order, approximation bound, fused PredCount).
	for gname, g := range testGraphs(t) {
		d := kcore.Degeneracy(g)
		for _, alg := range []SortAlg{SortCounting, SortRadix, SortQuick} {
			opts := ADGOptions{Epsilon: 0.1, Procs: 2, Seed: 4, Sorted: true, Sort: alg}
			o := ADG(g, opts)
			if err := o.Validate(g); err != nil {
				t.Errorf("%s alg=%d: %v", gname, alg, err)
				continue
			}
			if d > 0 {
				if got := MaxEqualOrHigherRankNeighbors(g, o.Rank); float64(got) > ApproxFactorBound(opts)*float64(d) {
					t.Errorf("%s alg=%d: approx factor violated", gname, alg)
				}
			}
			want := PredCounts(g, o.Keys, 2)
			for v := range want {
				if o.PredCount[v] != want[v] {
					t.Errorf("%s alg=%d: fused PredCount wrong at %d", gname, alg, v)
					break
				}
			}
		}
	}
}

func TestADGSortStabilityCountingVsQuick(t *testing.T) {
	// Counting sort and quicksort-with-ID-tiebreak both order each batch
	// by degree; within equal degrees counting keeps array order while
	// quick uses ascending IDs. On a fresh ADG array (IDs in order) the
	// two coincide.
	g := testGraphs(t)["er"]
	a := ADG(g, ADGOptions{Epsilon: 0.1, Procs: 1, Seed: 4, Sorted: true, Sort: SortCounting})
	b := ADG(g, ADGOptions{Epsilon: 0.1, Procs: 1, Seed: 4, Sorted: true, Sort: SortQuick})
	for v := range a.Rank {
		if a.Rank[v] != b.Rank[v] {
			t.Fatalf("counting vs quick diverge at vertex %d", v)
		}
	}
}
