package order

import (
	"container/heap"
	"math/bits"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/kcore"
	"repro/internal/par"
)

// FirstFit returns the FF ordering [25]: the natural vertex order
// (vertex 0 is colored first, so it gets the highest rank).
func FirstFit(g *graph.Graph) *Ordering {
	n := g.NumVertices()
	ranks := make([]uint32, n)
	keys := make([]uint64, n)
	for v := 0; v < n; v++ {
		ranks[v] = uint32(n - v)
		keys[v] = uint64(ranks[v]) << 32
	}
	return &Ordering{Name: "FF", Keys: keys, Rank: ranks, Iterations: 1}
}

// Random returns the R ordering [26]: a uniformly random permutation.
func Random(g *graph.Graph, seed uint64) *Ordering {
	n := g.NumVertices()
	o := NewFromRanks("R", make([]uint32, n), seed)
	o.Iterations = 1
	return o
}

// LargestFirst returns the LF ordering [31]: rank = degree, random ties.
func LargestFirst(g *graph.Graph, seed uint64) *Ordering {
	n := g.NumVertices()
	ranks := make([]uint32, n)
	par.For(par.DefaultProcs(), n, func(v int) {
		ranks[v] = uint32(g.Degree(uint32(v)))
	})
	o := NewFromRanks("LF", ranks, seed)
	o.Iterations = 1
	return o
}

// LargestLogFirst returns the LLF ordering [31]: rank = ⌈log₂(deg)⌉,
// random ties. Coarsening degrees to log classes bounds the number of
// distinct priority levels by O(log Δ), which is what improves JP-LF's
// worst-case depth.
func LargestLogFirst(g *graph.Graph, seed uint64) *Ordering {
	n := g.NumVertices()
	ranks := make([]uint32, n)
	par.For(par.DefaultProcs(), n, func(v int) {
		ranks[v] = uint32(bits.Len(uint(g.Degree(uint32(v)))))
	})
	o := NewFromRanks("LLF", ranks, seed)
	o.Iterations = 1
	return o
}

// SmallestLast returns the SL ordering [28]: the exact degeneracy ordering
// from min-degree peeling. Rank = removal position, so later-removed
// vertices (the dense core) are colored first and every vertex has at most
// d higher-ranked neighbors; with JP this gives a (d+1)-coloring. The
// peeling is inherently sequential (depth Ω(n)), which is exactly the
// bottleneck ADG relaxes.
func SmallestLast(g *graph.Graph) *Ordering {
	n := g.NumVertices()
	dec := kcore.Decompose(g)
	ranks := make([]uint32, n)
	keys := make([]uint64, n)
	for v := 0; v < n; v++ {
		ranks[v] = uint32(dec.Pos[v])
		keys[v] = uint64(ranks[v]) << 32
	}
	return &Ordering{Name: "SL", Keys: keys, Rank: ranks, Iterations: n}
}

// SmallestLogLast returns the SLL ordering [31]: batched SL over log-degree
// classes. With threshold 2^i, every vertex of residual degree ≤ 2^i is
// removed in one parallel round; when no vertex qualifies the threshold
// doubles. O(log Δ · log n) rounds.
func SmallestLogLast(g *graph.Graph, seed uint64, p int) *Ordering {
	n := g.NumVertices()
	deg := g.Degrees()
	removed := make([]bool, n)
	ranks := make([]uint32, n)
	active := make([]uint32, n)
	for i := range active {
		active[i] = uint32(i)
	}
	threshold := int32(1)
	iter := 0
	rank := uint32(0)
	for len(active) > 0 {
		iter++
		th := threshold
		batch := par.Pack(p, len(active), func(i int) bool {
			return deg[active[i]] <= th
		})
		if len(batch) == 0 {
			threshold *= 2
			continue
		}
		// Mark and rank the batch.
		for _, bi := range batch {
			v := active[bi]
			removed[v] = true
			ranks[v] = rank
		}
		rank++
		// Push-style degree update with atomics (CRCW), edge-balanced
		// over the removed batch's degrees.
		par.ForWeightedBy(p, len(batch), func(i int) int64 {
			return int64(g.Degree(active[batch[i]]))
		}, func(i int) {
			v := active[batch[i]]
			for _, u := range g.Neighbors(v) {
				if !removed[u] {
					par.DecrementAndFetch(&deg[u])
				}
			}
		})
		keep := par.Pack(p, len(active), func(i int) bool {
			return !removed[active[i]]
		})
		next := make([]uint32, len(keep))
		par.For(p, len(keep), func(i int) { next[i] = active[keep[i]] })
		active = next
	}
	o := NewFromRanks("SLL", ranks, seed)
	o.Iterations = iter
	return o
}

// IncidenceDegree returns the ID ordering [1]: repeatedly select the vertex
// with the largest number of already-selected neighbors (incidence degree),
// breaking ties by larger static degree. The first colored vertex has the
// highest rank. Sequential by nature; O(n + m) with bucketed priorities.
func IncidenceDegree(g *graph.Graph) *Ordering {
	n := g.NumVertices()
	ranks := make([]uint32, n)
	keys := make([]uint64, n)
	if n == 0 {
		return &Ordering{Name: "ID", Keys: keys, Rank: ranks, Iterations: 0}
	}
	incid := make([]int32, n) // number of already-ordered neighbors
	picked := make([]bool, n)
	// Buckets over incidence degree; lazy deletion.
	buckets := make([][]uint32, g.MaxDegree()+1)
	for v := 0; v < n; v++ {
		buckets[0] = append(buckets[0], uint32(v))
	}
	cur := 0
	for seq := 0; seq < n; seq++ {
		// Find the highest non-empty bucket with a live entry.
		var v int = -1
		for cur >= 0 {
			b := buckets[cur]
			for len(b) > 0 {
				cand := b[len(b)-1]
				b = b[:len(b)-1]
				if !picked[cand] && int(incid[cand]) == cur {
					v = int(cand)
					break
				}
			}
			buckets[cur] = b
			if v >= 0 {
				break
			}
			cur--
		}
		if v < 0 {
			// All buckets exhausted under cur: rebuild by scanning (rare).
			for u := 0; u < n; u++ {
				if !picked[u] {
					v = u
					break
				}
			}
		}
		picked[v] = true
		ranks[v] = uint32(n - seq)
		keys[v] = uint64(ranks[v])<<32 | uint64(v)
		for _, u := range g.Neighbors(uint32(v)) {
			if !picked[u] {
				incid[u]++
				buckets[incid[u]] = append(buckets[incid[u]], u)
				if int(incid[u]) > cur {
					cur = int(incid[u])
				}
			}
		}
	}
	return &Ordering{Name: "ID", Keys: keys, Rank: ranks, Iterations: n}
}

// aslItem is a lazily keyed heap entry for ASL.
type aslItem struct {
	deg int32
	v   uint32
}

type aslHeap []aslItem

func (h aslHeap) Len() int            { return len(h) }
func (h aslHeap) Less(i, j int) bool  { return h[i].deg < h[j].deg }
func (h aslHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *aslHeap) Push(x interface{}) { *h = append(*h, x.(aslItem)) }
func (h *aslHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// ApproxSmallestLast returns the ASL ordering of Patwary et al. [32]:
// the vertex set is split into p chunks and each worker peels its chunk in
// local smallest-degree-first order while degrees are updated globally
// with atomics. The interleaving approximates SL without any guaranteed
// approximation factor (Table II lists ASL with no bounds).
func ApproxSmallestLast(g *graph.Graph, seed uint64, p int) *Ordering {
	n := g.NumVertices()
	if p <= 0 {
		p = par.DefaultProcs()
	}
	deg := g.Degrees()
	ranks := make([]uint32, n)
	var counter int64 = -1
	par.ForWorkers(p, n, func(w, lo, hi int) {
		h := make(aslHeap, 0, hi-lo)
		for v := lo; v < hi; v++ {
			h = append(h, aslItem{deg: atomic.LoadInt32(&deg[v]), v: uint32(v)})
		}
		heap.Init(&h)
		done := make([]bool, hi-lo)
		for h.Len() > 0 {
			it := heap.Pop(&h).(aslItem)
			if done[it.v-uint32(lo)] {
				continue
			}
			d := atomic.LoadInt32(&deg[it.v])
			if d < it.deg {
				// Stale: degree dropped; reinsert with the fresh value.
				heap.Push(&h, aslItem{deg: d, v: it.v})
				continue
			}
			done[it.v-uint32(lo)] = true
			ts := atomic.AddInt64(&counter, 1)
			ranks[it.v] = uint32(ts)
			for _, u := range g.Neighbors(it.v) {
				nd := atomic.AddInt32(&deg[u], -1)
				// Lazy decrease-key: reinsert chunk-local neighbors with
				// their fresh degree. Cross-chunk neighbors stay stale in
				// their owner's heap — that staleness is exactly ASL's
				// approximation (no bound, Table II).
				if int(u) >= lo && int(u) < hi && !done[int(u)-lo] {
					heap.Push(&h, aslItem{deg: nd, v: u})
				}
			}
		}
	})
	o := NewFromRanks("ASL", ranks, seed)
	o.Iterations = (n + p - 1) / maxInt(p, 1)
	return o
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
