package order

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/kcore"
)

func allBasicOrderings(g *graph.Graph) map[string]*Ordering {
	return map[string]*Ordering{
		"FF":  FirstFit(g),
		"R":   Random(g, 1),
		"LF":  LargestFirst(g, 1),
		"LLF": LargestLogFirst(g, 1),
		"SL":  SmallestLast(g),
		"SLL": SmallestLogLast(g, 1, 2),
		"ID":  IncidenceDegree(g),
		"ASL": ApproxSmallestLast(g, 1, 2),
	}
}

func TestBasicOrderingsValid(t *testing.T) {
	for gname, g := range testGraphs(t) {
		for oname, o := range allBasicOrderings(g) {
			if err := o.Validate(g); err != nil {
				t.Errorf("%s/%s: %v", gname, oname, err)
			}
		}
	}
}

func TestSLExactDegeneracy(t *testing.T) {
	// SL is the exact degeneracy ordering: the max number of higher-ranked
	// neighbors equals d, so JP-SL uses ≤ d+1 colors (Table III).
	for gname, g := range testGraphs(t) {
		d := kcore.Degeneracy(g)
		o := SmallestLast(g)
		if got := MaxPredecessors(g, o.Keys); got != d {
			t.Errorf("%s: SL max predecessors %d != degeneracy %d", gname, got, d)
		}
	}
}

func TestFFNaturalOrder(t *testing.T) {
	g, _ := gen.Path(10, 1)
	o := FirstFit(g)
	// Vertex 0 must have the highest key (colored first).
	for v := 1; v < 10; v++ {
		if o.Keys[v] >= o.Keys[0] {
			t.Fatalf("FF: vertex %d not ranked below vertex 0", v)
		}
	}
}

func TestLFDegreesDominate(t *testing.T) {
	g, _ := gen.Star(50, 1)
	o := LargestFirst(g, 3)
	// The hub has degree 49, every leaf 1: hub must have the highest key.
	for v := 1; v < 50; v++ {
		if o.Keys[v] >= o.Keys[0] {
			t.Fatalf("LF: leaf %d outranks hub", v)
		}
	}
}

func TestLLFLogClasses(t *testing.T) {
	g, _ := gen.Star(100, 1)
	o := LargestLogFirst(g, 3)
	// All leaves share the same log-class rank; the hub is strictly higher.
	leafRank := o.Rank[1]
	for v := 2; v < 100; v++ {
		if o.Rank[v] != leafRank {
			t.Fatal("LLF: leaves in different log classes")
		}
	}
	if o.Rank[0] <= leafRank {
		t.Fatal("LLF: hub not above leaves")
	}
}

func TestSLLApproximatesSL(t *testing.T) {
	// SLL has no guaranteed factor but must stay within a small constant
	// of d on these benign graphs, and must need far fewer rounds than n.
	for _, gname := range []string{"er", "ba", "grid", "kron"} {
		g := testGraphs(t)[gname]
		d := kcore.Degeneracy(g)
		o := SmallestLogLast(g, 1, 2)
		got := MaxPredecessors(g, o.Keys)
		if got > 4*d+4 {
			t.Errorf("%s: SLL max predecessors %d ≫ d=%d", gname, got, d)
		}
		if o.Iterations >= g.NumVertices()/2 {
			t.Errorf("%s: SLL used %d rounds for n=%d — not batched",
				gname, o.Iterations, g.NumVertices())
		}
	}
}

func TestIDOrderingIsSequentialGreedyOrder(t *testing.T) {
	// ID ranks must be a permutation of n-seq values: all distinct.
	g := testGraphs(t)["er"]
	o := IncidenceDegree(g)
	seen := map[uint32]bool{}
	for _, r := range o.Rank {
		if seen[r] {
			t.Fatal("ID ranks not distinct")
		}
		seen[r] = true
	}
}

func TestASLCoversAllVertices(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		g := testGraphs(t)["comm"]
		o := ApproxSmallestLast(g, 2, p)
		if err := o.Validate(g); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		n := g.NumVertices()
		seen := make([]bool, n)
		for _, r := range o.Rank {
			if int(r) >= n || seen[r] {
				t.Fatalf("p=%d: ASL ranks not a permutation", p)
			}
			seen[r] = true
		}
	}
}

func TestASLSequentialEqualsSL(t *testing.T) {
	// With one worker ASL degenerates to exact SL (global min each step up
	// to tie-breaking), so its max-predecessor count must equal d.
	for _, gname := range []string{"er", "grid", "ba"} {
		g := testGraphs(t)[gname]
		d := kcore.Degeneracy(g)
		o := ApproxSmallestLast(g, 1, 1)
		if got := MaxPredecessors(g, o.Keys); got != d {
			t.Errorf("%s: sequential ASL max preds %d != d=%d", gname, got, d)
		}
	}
}

func TestRandomOrderingUniformRanks(t *testing.T) {
	g, _ := gen.Path(100, 1)
	o := Random(g, 5)
	for _, r := range o.Rank {
		if r != 0 {
			t.Fatal("R ordering should have all-zero primary rank")
		}
	}
	// But keys must still be distinct.
	if err := o.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestLongestPath(t *testing.T) {
	// On a path graph with FF priorities (monotone along the path), the
	// DAG is the whole path: longest path = n.
	g, _ := gen.Path(20, 1)
	o := FirstFit(g)
	if got := LongestPath(g, o.Keys); got != 20 {
		t.Fatalf("FF path longest = %d want 20", got)
	}
	// Random priorities on a path give expected O(log n) longest path;
	// assert a generous bound.
	o2 := Random(g, 7)
	if got := LongestPath(g, o2.Keys); got > 15 {
		t.Fatalf("random path longest = %d suspiciously long", got)
	}
	// Clique: any total order gives a Hamiltonian path in the DAG.
	kg, _ := gen.Complete(8, 1)
	if got := LongestPath(kg, Random(kg, 1).Keys); got != 8 {
		t.Fatalf("clique longest = %d want 8", got)
	}
}

func TestLongestPathEmpty(t *testing.T) {
	g, _ := graph.FromEdges(0, nil, 1)
	if LongestPath(g, nil) != 0 {
		t.Fatal("empty graph longest path != 0")
	}
}

func TestMaxPredecessorsVsRankNeighbors(t *testing.T) {
	// MaxPredecessors (strict, over keys) is at most
	// MaxEqualOrHigherRankNeighbors (non-strict, over ranks).
	for gname, g := range testGraphs(t) {
		for oname, o := range allBasicOrderings(g) {
			strict := MaxPredecessors(g, o.Keys)
			loose := MaxEqualOrHigherRankNeighbors(g, o.Rank)
			if strict > loose {
				t.Errorf("%s/%s: strict %d > loose %d", gname, oname, strict, loose)
			}
		}
	}
}

func TestNewFromRanksDeterministic(t *testing.T) {
	ranks := []uint32{5, 5, 2, 7}
	a := NewFromRanks("x", ranks, 42)
	b := NewFromRanks("x", ranks, 42)
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] {
			t.Fatal("NewFromRanks not deterministic")
		}
	}
	c := NewFromRanks("x", ranks, 43)
	same := true
	for i := range a.Keys {
		if a.Keys[i] != c.Keys[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical tie-breaks")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g, _ := gen.Path(5, 1)
	o := Random(g, 1)
	o.Keys[0] = o.Keys[1]
	if err := o.Validate(g); err == nil {
		t.Fatal("duplicate key not caught")
	}
	o2 := Random(g, 1)
	o2.Rank[0] = 9
	if err := o2.Validate(g); err == nil {
		t.Fatal("rank/key mismatch not caught")
	}
	o3 := Random(g, 1)
	o3.Keys = o3.Keys[:3]
	if err := o3.Validate(g); err == nil {
		t.Fatal("length mismatch not caught")
	}
}
