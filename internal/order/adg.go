package order

import (
	"context"
	"math"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/sortutil"
	"repro/internal/xrand"
)

// ADGOptions configures the approximate-degeneracy-ordering family.
type ADGOptions struct {
	// Epsilon is the approximation knob ε ≥ 0 of Algorithm 1. Larger ε
	// removes more vertices per round (more parallelism, fewer rounds)
	// at the cost of a looser 2(1+ε) approximation factor.
	Epsilon float64
	// Procs is the worker count; <= 0 selects GOMAXPROCS.
	Procs int
	// Seed drives the random tie-breaking permutation ρ_R.
	Seed uint64
	// Median selects ADG-M (§V-D): remove the lower half of the degree
	// distribution each round instead of the (1+ε)·average threshold.
	// The ordering becomes partial 4-approximate (Lemma 15).
	Median bool
	// CREW selects the concurrent-read-only UPDATE of Algorithm 2:
	// degrees are recomputed pull-style with no atomics, trading
	// O(m + nd) work for freedom from concurrent writes (§III-B).
	CREW bool
	// Sorted selects ADG-O (Algorithm 6, §V-A/B/C): batches are kept in
	// one contiguous [R(1) … R(i) | U] array, each batch is counting-
	// sorted by residual degree into an explicit total order, and the JP
	// in-degree array ("rank") is fused into UPDATE, letting JP skip its
	// DAG-construction pass.
	Sorted bool
	// Sort selects the integer sort used by ADG-O to order each batch
	// (§V-B experiments with radix, counting and quicksort).
	Sort SortAlg
	// CacheDegreeSums enables the §V-F optimization: the degree sum of
	// the active set is maintained incrementally (subtracting the cut to
	// each removed batch) instead of being recomputed by a Reduce every
	// iteration. Identical output, slightly less work.
	CacheDegreeSums bool
}

// SortAlg selects the in-batch sorting algorithm for ADG-O (§V-B).
type SortAlg int

const (
	// SortCounting is linear-time counting sort (the paper's default).
	SortCounting SortAlg = iota
	// SortRadix is LSD radix sort over (degree, vertex) pairs.
	SortRadix
	// SortQuick is comparison quicksort.
	SortQuick
)

// sortBatch orders batch by ascending residual degree using alg.
// Counting and quick sorts are stable in (degree, position); radix sorts
// by (degree, vertex ID) — all three yield valid §V-B orders.
func sortBatch(batch []uint32, deg []int32, maxDeg int, alg SortAlg) {
	switch alg {
	case SortRadix:
		keys := make([]uint64, len(batch))
		for i, v := range batch {
			keys[i] = uint64(uint32(deg[v]))<<32 | uint64(v)
		}
		sortutil.RadixSortPairs(keys, batch)
	case SortQuick:
		sortutil.QuickSortByKey(batch, func(v uint32) int { return int(deg[v]) })
	default:
		sortutil.CountingSortByKey(batch, maxDeg+1, func(v uint32) int { return int(deg[v]) })
	}
}

const unsetRank = ^uint32(0)

// ADG computes the partial 2(1+ε)-approximate degeneracy ordering of
// Algorithm 1 (or its ADG-M / ADG-O variants per opts). The returned
// Ordering carries the per-iteration partitions R(1..ρ) needed by DEC-ADG
// and, for ADG-O, the fused JP predecessor counts.
func ADG(g *graph.Graph, opts ADGOptions) *Ordering {
	o, _ := ADGContext(context.Background(), g, opts)
	return o
}

// ADGContext is ADG with cooperative cancellation: ctx is checked once
// per peeling iteration (ADG performs O(log n / log(1+ε)) of them, Lemma
// 1), so a cancelled caller gets control back within one round. On
// cancellation the partial ordering is discarded and ctx.Err() returned.
func ADGContext(ctx context.Context, g *graph.Graph, opts ADGOptions) (*Ordering, error) {
	if opts.Epsilon < 0 {
		opts.Epsilon = 0
	}
	if opts.Sorted {
		return adgSorted(ctx, g, opts)
	}
	return adgPlain(ctx, g, opts)
}

// adgPlain is Algorithm 1 (and ADG-M): vertices removed in the same
// iteration share a rank; ties are broken by the random permutation.
func adgPlain(ctx context.Context, g *graph.Graph, opts ADGOptions) (*Ordering, error) {
	n := g.NumVertices()
	p := opts.Procs
	deg := g.Degrees()
	rank := make([]uint32, n)
	for v := range rank {
		rank[v] = unsetRank
	}
	active := make([]uint32, n)
	for i := range active {
		active[i] = uint32(i)
	}
	var partitions [][]uint32
	iter := uint32(0)
	// §V-F: optionally maintain the active degree sum incrementally.
	var cachedSum int64
	if opts.CacheDegreeSums && !opts.Median {
		cachedSum = par.ReduceInt64(p, n, func(i int) int64 { return int64(deg[i]) })
	}
	for len(active) > 0 {
		if err := par.CtxErr(ctx); err != nil {
			return nil, err
		}
		var batch []uint32
		if opts.CacheDegreeSums && !opts.Median {
			batch = selectBatchWithSum(active, deg, opts, p, cachedSum)
			// Subtract the removed batch's residual degrees now; the cut
			// edges into survivors are subtracted during UPDATE below.
			cachedSum -= par.ReduceInt64(p, len(batch), func(i int) int64 {
				return int64(deg[batch[i]])
			})
		} else {
			batch = selectBatch(active, deg, opts, p)
		}
		// Assign the iteration rank.
		par.For(p, len(batch), func(i int) { rank[batch[i]] = iter })
		partitions = append(partitions, batch)
		// Survivors.
		keepIdx := par.Pack(p, len(active), func(i int) bool {
			return rank[active[i]] == unsetRank
		})
		next := make([]uint32, len(keepIdx))
		par.For(p, len(keepIdx), func(i int) { next[i] = active[keepIdx[i]] })
		// UPDATE: subtract removed neighbors from surviving degrees. When
		// caching degree sums (§V-F), also count the cut edges removed
		// from the survivors' side.
		var cut int64
		if opts.CREW {
			// Algorithm 2: pull-style recount, concurrent reads only.
			// Edge-balanced blocks: the recount scans each survivor's list.
			par.ForWeightedBy(p, len(next), func(i int) int64 {
				return int64(g.Degree(next[i]))
			}, func(i int) {
				u := next[i]
				var c int32
				for _, w := range g.Neighbors(u) {
					if rank[w] == iter {
						c++
					}
				}
				deg[u] -= c
				if opts.CacheDegreeSums {
					par.FetchAdd64(&cut, int64(c))
				}
			})
		} else {
			// Algorithm 1: push-style DecrementAndFetch (CRCW),
			// edge-balanced over the removed batch's degrees.
			par.ForWeightedBy(p, len(batch), func(i int) int64 {
				return int64(g.Degree(batch[i]))
			}, func(i int) {
				v := batch[i]
				var c int64
				for _, w := range g.Neighbors(v) {
					if rank[w] == unsetRank {
						par.DecrementAndFetch(&deg[w])
						c++
					}
				}
				if opts.CacheDegreeSums {
					par.FetchAdd64(&cut, c)
				}
			})
		}
		if opts.CacheDegreeSums && !opts.Median {
			cachedSum -= cut
		}
		active = next
		iter++
	}
	name := "ADG"
	if opts.Median {
		name = "ADG-M"
	}
	o := NewFromRanks(name, rank, opts.Seed)
	o.Partitions = partitions
	o.Iterations = int(iter)
	return o, nil
}

// selectBatch returns the vertices of active to remove this iteration:
// degree ≤ (1+ε)·δ̂ for ADG, or the lower half by degree for ADG-M.
func selectBatch(active []uint32, deg []int32, opts ADGOptions, p int) []uint32 {
	if opts.Median {
		degs := make([]int32, len(active))
		par.For(p, len(active), func(i int) { degs[i] = deg[active[i]] })
		med := sortutil.MedianOfInt32(degs)
		half := (len(active) + 1) / 2
		lessIdx := par.Pack(p, len(active), func(i int) bool { return degs[i] < med })
		batch := make([]uint32, 0, half)
		for _, i := range lessIdx {
			batch = append(batch, active[i])
		}
		if len(batch) < half {
			take := half - len(batch)
			for i := range active {
				if degs[i] == med {
					batch = append(batch, active[i])
					take--
					if take == 0 {
						break
					}
				}
			}
		}
		return batch
	}
	sum := par.ReduceInt64(p, len(active), func(i int) int64 {
		return int64(deg[active[i]])
	})
	return thresholdBatch(active, deg, opts.Epsilon, p, sum)
}

// selectBatchWithSum is the §V-F path: the degree sum is supplied from
// the incrementally maintained cache instead of a fresh Reduce.
func selectBatchWithSum(active []uint32, deg []int32, opts ADGOptions, p int, sum int64) []uint32 {
	return thresholdBatch(active, deg, opts.Epsilon, p, sum)
}

func thresholdBatch(active []uint32, deg []int32, eps float64, p int, sum int64) []uint32 {
	avg := float64(sum) / float64(len(active))
	threshold := (1 + eps) * avg
	idx := par.Pack(p, len(active), func(i int) bool {
		return float64(deg[active[i]]) <= threshold
	})
	batch := make([]uint32, len(idx))
	par.For(p, len(idx), func(i int) { batch[i] = active[idx[i]] })
	return batch
}

// adgSorted is ADG-O (Algorithm 6): the contiguous [R … | U] array with
// in-batch counting sort by residual degree, explicit total priorities, and
// the fused JP in-degree computation in UPDATEandPRIORITIZE.
func adgSorted(ctx context.Context, g *graph.Graph, opts ADGOptions) (*Ordering, error) {
	n := g.NumVertices()
	p := opts.Procs
	deg := g.Degrees()
	maxDeg := g.MaxDegree()
	pos := make([]uint32, n) // final total-order position; unsetRank = active
	for v := range pos {
		pos[v] = unsetRank
	}
	arr := make([]uint32, n) // the combined [R(1) … R(i) | U] array
	for i := range arr {
		arr[i] = uint32(i)
	}
	predCount := make([]int32, n)
	removed := 0
	iter := 0
	for removed < n {
		if err := par.CtxErr(ctx); err != nil {
			return nil, err
		}
		active := arr[removed:]
		var batch []uint32
		if opts.Median {
			// ADG-M-O: counting sort the whole active window by degree,
			// take the lower half.
			sortutil.CountingSortByKey(active, maxDeg+1, func(v uint32) int { return int(deg[v]) })
			half := (len(active) + 1) / 2
			batch = active[:half]
		} else {
			sum := par.ReduceInt64(p, len(active), func(i int) int64 {
				return int64(deg[active[i]])
			})
			threshold := (1 + opts.Epsilon) * float64(sum) / float64(len(active))
			// PARTITION (§V-A): stable split into [R | U\R] in O(|U|).
			batch = partitionInPlace(active, func(v uint32) bool {
				return float64(deg[v]) <= threshold
			})
			// SORT (§V-B): order R by increasing residual degree with the
			// configured integer sort.
			sortBatch(batch, deg, maxDeg, opts.Sort)
		}
		// Explicit total priorities ℓ+i (§V-B).
		base := uint32(removed)
		par.For(p, len(batch), func(i int) {
			pos[batch[i]] = base + uint32(i)
		})
		// UPDATEandPRIORITIZE (§V-C): one pass both maintains residual
		// degrees and derives the JP DAG in-degree. Edge-balanced blocks:
		// the pass scans each batch vertex's full adjacency list.
		par.ForWeightedBy(p, len(batch), func(i int) int64 {
			return int64(g.Degree(batch[i]))
		}, func(i int) {
			v := batch[i]
			pv := pos[v]
			var c int32
			for _, w := range g.Neighbors(v) {
				pw := pos[w] // unsetRank (= +inf) for still-active vertices
				if pw > pv {
					c++
					if pw == unsetRank {
						par.DecrementAndFetch(&deg[w])
					}
				}
			}
			predCount[v] = c
		})
		removed += len(batch)
		iter++
	}
	name := "ADG-O"
	if opts.Median {
		name = "ADG-M-O"
	}
	perm := xrand.New(opts.Seed).Perm(n, nil)
	keys := make([]uint64, n)
	par.For(p, n, func(v int) {
		keys[v] = uint64(pos[v])<<32 | uint64(perm[v])
	})
	// Rank here is the fine-grained total position; iteration partitions
	// (needed only by DEC-ADG) come from the unsorted ADG variant.
	return &Ordering{
		Name:       name,
		Keys:       keys,
		Rank:       pos,
		Iterations: iter,
		PredCount:  predCount,
	}, nil
}

// partitionInPlace stably reorders a so that elements satisfying keep come
// first and returns the prefix. O(len(a)) time and scratch.
func partitionInPlace(a []uint32, keep func(v uint32) bool) []uint32 {
	tail := make([]uint32, 0, len(a))
	w := 0
	for _, v := range a {
		if keep(v) {
			a[w] = v
			w++
		} else {
			tail = append(tail, v)
		}
	}
	copy(a[w:], tail)
	return a[:w]
}

// TheoreticalIterationBound returns the upper bound on ADG iterations from
// Lemma 1: ⌈log n / log(1+ε)⌉ + 1 (infinite for ε = 0).
func TheoreticalIterationBound(n int, eps float64) int {
	if n <= 1 {
		return 1
	}
	if eps <= 0 {
		return n
	}
	return int(math.Ceil(math.Log(float64(n))/math.Log1p(eps))) + 1
}

// ApproxFactorBound returns the guaranteed partial approximation factor:
// 2(1+ε) for ADG/ADG-O (Lemma 4) and 4 for the median variants (Lemma 15).
func ApproxFactorBound(opts ADGOptions) float64 {
	if opts.Median {
		return 4
	}
	return 2 * (1 + opts.Epsilon)
}
