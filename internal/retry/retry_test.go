package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestDelaySchedule(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: 450 * time.Millisecond, Multiplier: 2}
	zero := func() float64 { return 0.5 } // Jitter 0 ignores rnd anyway
	want := []time.Duration{
		100 * time.Millisecond, // attempt 1
		200 * time.Millisecond,
		400 * time.Millisecond,
		450 * time.Millisecond, // capped
		450 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Delay(i+1, zero); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := p.Delay(0, zero); got != 0 {
		t.Fatalf("Delay(0) = %v, want 0", got)
	}
	if got := (Policy{}).Delay(3, zero); got != 0 {
		t.Fatalf("zero-policy Delay = %v, want 0", got)
	}
}

func TestDelayDefaultMultiplierAndCap(t *testing.T) {
	// Multiplier < 1 behaves as 2; MaxDelay <= 0 leaves growth uncapped.
	p := Policy{BaseDelay: 10 * time.Millisecond}
	if got := p.Delay(3, nil); got != 40*time.Millisecond {
		t.Fatalf("uncapped Delay(3) = %v, want 40ms", got)
	}
	// A base already past the cap is clamped down.
	p = Policy{BaseDelay: time.Second, MaxDelay: 100 * time.Millisecond}
	if got := p.Delay(1, nil); got != 100*time.Millisecond {
		t.Fatalf("clamped Delay(1) = %v, want 100ms", got)
	}
}

func TestJitteredBounds(t *testing.T) {
	d := 100 * time.Millisecond
	if got := Jittered(d, 0, nil); got != d {
		t.Fatalf("zero jitter changed the delay: %v", got)
	}
	if got := Jittered(0, 0.5, nil); got != 0 {
		t.Fatalf("jitter invented a delay: %v", got)
	}
	// rnd=0 -> lower bound, rnd just under 1 -> upper bound; frac > 1
	// clamps to 1 (delays never go negative).
	if got := Jittered(d, 0.2, func() float64 { return 0 }); got != 80*time.Millisecond {
		t.Fatalf("lower bound = %v, want 80ms", got)
	}
	hi := Jittered(d, 0.2, func() float64 { return 0.999999 })
	if hi < 119*time.Millisecond || hi > 120*time.Millisecond {
		t.Fatalf("upper bound = %v, want ~120ms", hi)
	}
	if got := Jittered(d, 5, func() float64 { return 0 }); got != 0 {
		t.Fatalf("over-clamped jitter lower bound = %v, want 0", got)
	}
	// Deterministic rng makes the spread reproducible.
	seq := []float64{0.25, 0.25}
	i := 0
	rnd := func() float64 { v := seq[i%len(seq)]; i++; return v }
	a, b := Jittered(d, 0.2, rnd), Jittered(d, 0.2, rnd)
	if a != b {
		t.Fatalf("same rng draw produced %v then %v", a, b)
	}
}

func TestDoSucceedsAfterRetries(t *testing.T) {
	calls := 0
	p := Policy{Attempts: 3, BaseDelay: time.Millisecond}
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return fmt.Errorf("transient %d", calls)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want nil after 3", err, calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	sentinel := errors.New("still down")
	p := Policy{Attempts: 4, BaseDelay: time.Millisecond}
	err := p.Do(context.Background(), func(context.Context) error { calls++; return sentinel })
	if !errors.Is(err, sentinel) || calls != 4 {
		t.Fatalf("Do = %v after %d calls, want sentinel after 4", err, calls)
	}
	// Zero policy: exactly one attempt.
	calls = 0
	if err := (Policy{}).Do(context.Background(), func(context.Context) error { calls++; return sentinel }); !errors.Is(err, sentinel) || calls != 1 {
		t.Fatalf("zero-policy Do = %v after %d calls, want sentinel after 1", err, calls)
	}
}

func TestDoPermanentStopsImmediately(t *testing.T) {
	calls := 0
	sentinel := errors.New("bad request")
	p := Policy{Attempts: 5, BaseDelay: time.Millisecond}
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return Permanent(fmt.Errorf("wrapping: %w", sentinel))
	})
	if calls != 1 {
		t.Fatalf("permanent error retried: %d calls", calls)
	}
	// Do unwraps the Permanent marker but keeps the op's chain.
	if IsPermanent(err) {
		t.Fatalf("Do leaked the permanent marker: %v", err)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("Do lost the cause: %v", err)
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
	if !IsPermanent(Permanent(sentinel)) {
		t.Fatal("IsPermanent(Permanent(err)) = false")
	}
}

func TestDoHonorsCallerContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	p := Policy{Attempts: 100, BaseDelay: time.Hour} // would sleep forever
	err := p.Do(ctx, func(context.Context) error {
		calls++
		cancel() // expire during the first backoff
		return errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) || calls != 1 {
		t.Fatalf("Do = %v after %d calls, want context.Canceled after 1", err, calls)
	}
	// An already-expired context never calls op.
	calls = 0
	if err := p.Do(ctx, func(context.Context) error { calls++; return nil }); !errors.Is(err, context.Canceled) || calls != 0 {
		t.Fatalf("expired-ctx Do = %v after %d calls, want context.Canceled after 0", err, calls)
	}
}

func TestDoPerAttemptTimeout(t *testing.T) {
	attempts := 0
	p := Policy{Attempts: 2, PerAttempt: 10 * time.Millisecond}
	start := time.Now()
	err := p.Do(context.Background(), func(ctx context.Context) error {
		attempts++
		<-ctx.Done() // simulate a hung peer: wait for the attempt deadline
		return ctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) || attempts != 2 {
		t.Fatalf("Do = %v after %d attempts, want DeadlineExceeded after 2", err, attempts)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("two 10ms attempts took %v — per-attempt timeout not applied", elapsed)
	}
}
