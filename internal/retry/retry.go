// Package retry provides capped exponential backoff with jitter and
// per-attempt timeouts for the cluster's internal RPC paths (proxying,
// replication, registration fan-out, tail catch-up).
//
// Design constraints, in order:
//
//   - bounded: a hung peer costs at most Attempts x (PerAttempt +
//     backoff), never an unbounded wait — Do always respects the
//     caller's context, so an inbound client deadline cuts the whole
//     retry loop short;
//   - deterministic where it matters: Delay is a pure function of
//     (policy, attempt, rng), so tests can assert exact schedules by
//     passing their own rng; production callers pass nil and get the
//     process-global math/rand stream;
//   - explicit terminal failures: an op wraps an error in Permanent to
//     stop the loop early (e.g. an HTTP 4xx that retrying cannot fix).
package retry

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// Policy parameterizes one retry loop. The zero value is usable and
// means "one attempt, no backoff, no per-attempt timeout" — retry
// disabled, plain call-through.
type Policy struct {
	// Attempts is the total number of tries (first call included).
	// <= 0 behaves as 1.
	Attempts int
	// BaseDelay is the backoff before the second attempt; each further
	// backoff multiplies by Multiplier up to MaxDelay. <= 0 disables
	// sleeping between attempts.
	BaseDelay time.Duration
	// MaxDelay caps one backoff sleep. <= 0 means uncapped.
	MaxDelay time.Duration
	// Multiplier is the backoff growth factor. < 1 behaves as 2.
	Multiplier float64
	// Jitter spreads each backoff uniformly over [d*(1-J), d*(1+J)] so
	// N clients retrying the same dead peer do not re-arrive in
	// lockstep. Clamped to [0, 1].
	Jitter float64
	// PerAttempt bounds one attempt: each op call gets a child context
	// with this timeout layered on the caller's. <= 0 disables it.
	PerAttempt time.Duration
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Do stops retrying and returns it (unwrapped)
// immediately. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err carries the Permanent marker.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// Delay returns the backoff before attempt number `attempt` (1 = the
// delay between the first and second try). rnd is the jitter source in
// [0,1); nil selects the process-global math/rand stream. Pure given a
// deterministic rnd.
func (p Policy) Delay(attempt int, rnd func() float64) time.Duration {
	if p.BaseDelay <= 0 || attempt < 1 {
		return 0
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	return Jittered(time.Duration(d), p.Jitter, rnd)
}

// Jittered spreads d uniformly over [d*(1-frac), d*(1+frac)]. frac is
// clamped to [0, 1]; rnd nil selects the process-global math/rand
// stream. Shared by the backoff above and the cluster prober (whose
// fixed tick would otherwise re-synchronize probe storms across nodes
// restarted together).
func Jittered(d time.Duration, frac float64, rnd func() float64) time.Duration {
	if d <= 0 || frac <= 0 {
		return d
	}
	if frac > 1 {
		frac = 1
	}
	if rnd == nil {
		rnd = rand.Float64
	}
	// Uniform in [-frac, +frac].
	f := 1 + frac*(2*rnd()-1)
	return time.Duration(float64(d) * f)
}

// Do runs op under the policy: up to Attempts tries, each bounded by
// PerAttempt, with capped jittered backoff in between. It returns nil
// on the first success; the last error when the attempts are exhausted;
// the unwrapped error immediately when op returns a Permanent one; and
// ctx.Err() when the caller's context expires first (the in-between
// sleeps watch it too).
func (p Policy) Do(ctx context.Context, op func(ctx context.Context) error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 1; ; attempt++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		actx, cancel := ctx, context.CancelFunc(nil)
		if p.PerAttempt > 0 {
			actx, cancel = context.WithTimeout(ctx, p.PerAttempt)
		}
		err = op(actx)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if attempt >= attempts {
			return err
		}
		if d := p.Delay(attempt, nil); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		}
	}
}
