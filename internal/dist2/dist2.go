// Package dist2 implements distance-2 vertex coloring: no two vertices
// within two hops share a color. This is the k-distance generalization
// the paper's related work covers ([140], [150], [151]) and the variant
// actually required for Jacobian/Hessian compression when both row and
// column intersections matter. A distance-2 coloring of G is an ordinary
// coloring of the square graph G²; all bounds transfer with Δ replaced
// by Δ² and d by the degeneracy of G².
package dist2

import (
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/par"
	"repro/internal/verify"
)

// Result reports a distance-2 coloring.
type Result struct {
	Colors    []uint32
	NumColors int
}

// Square returns G²: u ~ v iff their distance in g is 1 or 2. Edge
// candidates are generated in parallel into per-block buffers with
// blocks balanced by deg(v)² (the per-vertex pair-generation cost);
// FromEdges sorts and dedups, so the result is independent of blocking.
func Square(g *graph.Graph, p int) (*graph.Graph, error) {
	n := g.NumVertices()
	if p <= 0 {
		p = par.DefaultProcs()
	}
	bufs := make([][]graph.Edge, p)
	par.ForWorkersWeightedBy(p, n, nil, func(v int) int64 {
		d := int64(g.Degree(uint32(v)))
		return d * d
	}, func(w, lo, hi int) {
		var out []graph.Edge
		for v := lo; v < hi; v++ {
			// Distance-1 edges.
			for _, u := range g.Neighbors(uint32(v)) {
				if uint32(v) < u {
					out = append(out, graph.Edge{U: uint32(v), V: u})
				}
			}
			// Distance-2: common-neighbor pairs rooted at v.
			ns := g.Neighbors(uint32(v))
			for i := 0; i < len(ns); i++ {
				for j := i + 1; j < len(ns); j++ {
					out = append(out, graph.Edge{U: ns[i], V: ns[j]})
				}
			}
		}
		bufs[w] = out
	})
	var edges []graph.Edge
	for _, b := range bufs {
		edges = append(edges, b...)
	}
	return graph.FromEdges(n, edges, p)
}

// Greedy computes a distance-2 coloring by first-fit over the given
// priority order, scanning the two-hop neighborhood directly (no
// materialized square graph, O(Σ deg²) work — the standard approach of
// Gebremedhin et al. [140]).
func Greedy(g *graph.Graph, ord *order.Ordering) *Result {
	n := g.NumVertices()
	colors := make([]uint32, n)
	if n == 0 {
		return &Result{Colors: colors}
	}
	seq := verticesByKeyDesc(ord.Keys)
	// Bound on needed colors: Δ² + 1.
	maxDeg := g.MaxDegree()
	limit := maxDeg*maxDeg + 2
	forbidden := make([]uint64, limit+1)
	var epoch uint64
	for _, v := range seq {
		epoch++
		for _, u := range g.Neighbors(v) {
			if c := colors[u]; c != 0 && int(c) <= limit {
				forbidden[c] = epoch
			}
			for _, w := range g.Neighbors(u) {
				if w == v {
					continue
				}
				if c := colors[w]; c != 0 && int(c) <= limit {
					forbidden[c] = epoch
				}
			}
		}
		c := uint32(1)
		for forbidden[c] == epoch {
			c++
		}
		colors[v] = c
	}
	return &Result{Colors: colors, NumColors: verify.NumColors(colors)}
}

// GreedyADG is distance-2 coloring in ADG order: the low-degeneracy
// ordering tends to keep two-hop palettes small on heavy-tailed graphs.
func GreedyADG(g *graph.Graph, eps float64, seed uint64, p int) *Result {
	ord := order.ADG(g, order.ADGOptions{Epsilon: eps, Procs: p, Seed: seed, Sorted: true})
	return Greedy(g, ord)
}

// Check verifies a distance-2 coloring: positive colors, and no equal
// colors within distance ≤ 2.
func Check(g *graph.Graph, colors []uint32) error {
	if err := verify.CheckProper(g, colors); err != nil {
		return err
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		ns := g.Neighbors(uint32(v))
		for i := 0; i < len(ns); i++ {
			for j := i + 1; j < len(ns); j++ {
				if ns[i] != ns[j] && colors[ns[i]] == colors[ns[j]] {
					return errTwoHop(ns[i], ns[j], uint32(v), colors[ns[i]])
				}
			}
		}
	}
	return nil
}

type twoHopError struct {
	a, b, via uint32
	color     uint32
}

func errTwoHop(a, b, via, color uint32) error {
	return &twoHopError{a: a, b: b, via: via, color: color}
}

func (e *twoHopError) Error() string {
	return "dist2: vertices share a color at distance 2"
}

func verticesByKeyDesc(keys []uint64) []uint32 {
	n := len(keys)
	idx := make([]uint32, n)
	inv := make([]uint64, n)
	for v := 0; v < n; v++ {
		idx[v] = uint32(v)
		inv[v] = ^keys[v]
	}
	// Reuse the radix pair sort shape (ascending inverted keys).
	kbuf := make([]uint64, n)
	vbuf := make([]uint32, n)
	ksrc, kdst := inv, kbuf
	vsrc, vdst := idx, vbuf
	for shift := uint(0); shift < 64; shift += 8 {
		var counts [257]int
		lo, hi := uint64(255), uint64(0)
		for _, k := range ksrc {
			b := (k >> shift) & 255
			counts[b+1]++
			if b < lo {
				lo = b
			}
			if b > hi {
				hi = b
			}
		}
		if lo == hi {
			continue
		}
		for i := 1; i < 257; i++ {
			counts[i] += counts[i-1]
		}
		for i, k := range ksrc {
			b := (k >> shift) & 255
			kdst[counts[b]] = k
			vdst[counts[b]] = vsrc[i]
			counts[b]++
		}
		ksrc, kdst = kdst, ksrc
		vsrc, vdst = vdst, vsrc
	}
	if n > 0 && &vsrc[0] != &idx[0] {
		copy(idx, vsrc)
	}
	return idx
}
