package dist2

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/greedy"
	"repro/internal/order"
	"repro/internal/verify"
)

func TestSquareOfPath(t *testing.T) {
	g, err := gen.Path(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := Square(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	// P5 squared: edges (i,i+1) and (i,i+2) -> 4 + 3 = 7.
	if sq.NumEdges() != 7 {
		t.Fatalf("P5^2 has %d edges, want 7", sq.NumEdges())
	}
	if !sq.HasEdge(0, 2) || sq.HasEdge(0, 3) {
		t.Fatal("square adjacency wrong")
	}
}

func TestSquareOfStarIsClique(t *testing.T) {
	g, err := gen.Star(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := Square(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sq.NumEdges() != 45 { // K10
		t.Fatalf("star^2 has %d edges, want 45", sq.NumEdges())
	}
}

func TestGreedyProducesValidD2Coloring(t *testing.T) {
	graphs := map[string]func() (*graph.Graph, error){
		"er":   func() (*graph.Graph, error) { return gen.ErdosRenyiGNM(150, 500, 1, 2) },
		"grid": func() (*graph.Graph, error) { return gen.Grid2D(10, 12, 2) },
		"star": func() (*graph.Graph, error) { return gen.Star(40, 2) },
		"ba":   func() (*graph.Graph, error) { return gen.BarabasiAlbert(200, 3, 5, 2) },
	}
	for name, mk := range graphs {
		g, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		res := Greedy(g, order.FirstFit(g))
		if err := Check(g, res.Colors); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		// Δ²+1 bound.
		dd := g.MaxDegree()
		if res.NumColors > dd*dd+1 {
			t.Errorf("%s: %d colors > Δ²+1", name, res.NumColors)
		}
	}
}

func TestD2EqualsColoringOfSquare(t *testing.T) {
	// A distance-2 coloring of G is exactly a proper coloring of G²;
	// cross-check our checker and a square-graph coloring.
	g, err := gen.ErdosRenyiGNM(100, 300, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := Square(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := greedy.FF(sq)
	if err := Check(g, res.Colors); err != nil {
		t.Fatalf("square coloring rejected by d2 checker: %v", err)
	}
	d2 := Greedy(g, order.FirstFit(g))
	if err := verify.CheckProper(sq, d2.Colors); err != nil {
		t.Fatalf("d2 coloring improper on square graph: %v", err)
	}
}

func TestGreedyADG(t *testing.T) {
	g, err := gen.BarabasiAlbert(300, 4, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := GreedyADG(g, 0.1, 3, 2)
	if err := Check(g, res.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRejectsTwoHopConflict(t *testing.T) {
	// Path 0-1-2: colors (1,2,1) are proper at distance 1 but not 2.
	g, err := gen.Path(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(g, []uint32{1, 2, 1}); err == nil {
		t.Fatal("distance-2 conflict accepted")
	}
	if err := Check(g, []uint32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
}

func TestStarD2NeedsNColors(t *testing.T) {
	// Every pair of leaves is at distance 2 through the hub: star needs
	// exactly n colors.
	g, err := gen.Star(12, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := Greedy(g, order.FirstFit(g))
	if res.NumColors != 12 {
		t.Fatalf("star d2 colors = %d, want 12", res.NumColors)
	}
}

func TestEmptyGraph(t *testing.T) {
	g, _ := graph.FromEdges(0, nil, 1)
	res := Greedy(g, order.FirstFit(g))
	if res.NumColors != 0 {
		t.Fatal("empty graph colored")
	}
}

func TestD2Property(t *testing.T) {
	check := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw%30) + 1
		g, err := gen.ErdosRenyiGNM(n, int64(mRaw)%90, seed, 1)
		if err != nil {
			return false
		}
		res := GreedyADG(g, 0.2, seed, 1)
		return Check(g, res.Colors) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
