package parcolor

import (
	"bytes"
	"strings"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	g, err := Kronecker(10, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range Algorithms() {
		res, err := Color(g, algo, Options{Procs: 2, Seed: 3, Epsilon: 0.1})
		if err != nil {
			t.Errorf("%s: %v", algo, err)
			continue
		}
		if err := Verify(g, res.Colors); err != nil {
			t.Errorf("%s: %v", algo, err)
		}
		if res.NumColors != NumColors(res.Colors) {
			t.Errorf("%s: NumColors mismatch", algo)
		}
	}
}

func TestColorUnknownAlgorithm(t *testing.T) {
	g, err := Grid2D(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Color(g, "JP-XYZ", Options{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestQualityBoundsHold(t *testing.T) {
	g, err := BarabasiAlbert(2000, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	eps := 0.1
	for _, algo := range []string{JPADG, JPADGM, JPSL, DECADGITR} {
		res, err := Color(g, algo, Options{Procs: 2, Seed: 9, Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		bound, err := QualityBound(g, algo, eps)
		if err != nil {
			t.Fatal(err)
		}
		if res.NumColors > bound {
			t.Errorf("%s: %d colors > bound %d", algo, res.NumColors, bound)
		}
	}
	if _, err := QualityBound(g, "bogus", eps); err == nil {
		t.Fatal("bogus algorithm bound accepted")
	}
}

func TestDegeneracyAndCoreness(t *testing.T) {
	g, err := BarabasiAlbert(500, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := Degeneracy(g)
	if d != 4 {
		t.Fatalf("BA(k=4) degeneracy = %d", d)
	}
	core := Coreness(g)
	maxCore := int32(0)
	for _, c := range core {
		if c > maxCore {
			maxCore = c
		}
	}
	if int(maxCore) != d {
		t.Fatalf("max coreness %d != degeneracy %d", maxCore, d)
	}
}

func TestApproxDegeneracyOrder(t *testing.T) {
	g, err := ErdosRenyi(1000, 5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	ord := ApproxDegeneracyOrder(g, 0.1, Options{Procs: 2, Seed: 1})
	if len(ord.Rank) != g.NumVertices() {
		t.Fatal("rank length wrong")
	}
	if ord.Iterations < 1 {
		t.Fatal("no iterations recorded")
	}
	if ord.ApproxFactor != 2.2 {
		t.Fatalf("approx factor %v", ord.ApproxFactor)
	}
	d := Degeneracy(g)
	// Check the guarantee empirically.
	for v := 0; v < g.NumVertices(); v++ {
		c := 0
		for _, u := range g.Neighbors(uint32(v)) {
			if ord.Rank[u] >= ord.Rank[v] {
				c++
			}
		}
		if float64(c) > ord.ApproxFactor*float64(d) {
			t.Fatalf("vertex %d has %d equal-or-higher neighbors (bound %.1f·%d)",
				v, c, ord.ApproxFactor, d)
		}
	}
}

func TestGraphConstructionAndIO(t *testing.T) {
	g, err := NewGraph(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 3 {
		t.Fatalf("round trip lost edges: %d", g2.NumEdges())
	}
}

func TestGenerators(t *testing.T) {
	if g, err := Community(100, 4, 0.3, 50, 1); err != nil || g.NumVertices() != 100 {
		t.Fatal("community generator broken")
	}
	if g, err := Grid2D(5, 6); err != nil || g.NumVertices() != 30 {
		t.Fatal("grid generator broken")
	}
	stats := ComputeStats(mustGraph(t))
	if stats.N != 9 || stats.M != 12 { // 3x3 lattice: 6 horizontal + 6 vertical
		t.Fatalf("stats=%+v", stats)
	}
}

func mustGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := Grid2D(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFormatResult(t *testing.T) {
	g := mustGraph(t)
	res, err := Color(g, JPADG, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := FormatResult("JP-ADG", res)
	if !strings.Contains(s, "colors") {
		t.Fatalf("format output %q", s)
	}
}

func TestDeterministicColors(t *testing.T) {
	g, err := ErdosRenyi(500, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{JPADG, DECADGITR, ITR} {
		a, err := Color(g, algo, Options{Procs: 1, Seed: 5, Epsilon: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Color(g, algo, Options{Procs: 4, Seed: 5, Epsilon: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		for v := range a.Colors {
			if a.Colors[v] != b.Colors[v] {
				t.Errorf("%s: colors differ across proc counts", algo)
				break
			}
		}
	}
}

func TestDensestSubgraphAPI(t *testing.T) {
	g, err := Community(500, 5, 0.5, 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	ds := DensestSubgraph(g, 0.1, Options{Procs: 2})
	if len(ds.Vertices) == 0 || ds.Density <= 0 {
		t.Fatalf("densest subgraph empty: %+v", ds)
	}
	if ds.ApproxFactor != 2.2 {
		t.Fatalf("approx factor %v", ds.ApproxFactor)
	}
	// Density is at least half the overall graph density.
	overall := float64(g.NumEdges()) / float64(g.NumVertices())
	if ds.Density < overall {
		t.Fatalf("densest density %.2f below whole-graph %.2f", ds.Density, overall)
	}
}

func TestMaximalCliquesAPI(t *testing.T) {
	g, err := NewGraph(5, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 3, V: 4}})
	if err != nil {
		t.Fatal(err)
	}
	var cliques [][]uint32
	MaximalCliques(g, 0.1, Options{Procs: 2, Seed: 1}, func(c []uint32) {
		cliques = append(cliques, append([]uint32(nil), c...))
	})
	// Expect the triangle {0,1,2} and the edge {3,4}.
	if len(cliques) != 2 {
		t.Fatalf("got %d cliques: %v", len(cliques), cliques)
	}
}

func TestImproveColoringAPI(t *testing.T) {
	g, err := Grid2D(20, 20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Color(g, JPR, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	improved, k, err := ImproveColoring(g, res.Colors, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, improved); err != nil {
		t.Fatal(err)
	}
	if k > res.NumColors {
		t.Fatalf("recoloring grew colors %d -> %d", res.NumColors, k)
	}
	// Improper input is rejected.
	if _, _, err := ImproveColoring(g, make([]uint32, g.NumVertices()), 1, 1); err == nil {
		t.Fatal("improper coloring accepted")
	}
}
