# The fmt/vet/build/test/race recipes below are the CI contract: they
# must stay byte-for-byte identical to the run: lines of the `test` job
# in .github/workflows/ci.yml (TestMakefileMatchesWorkflow enforces it),
# so local `make ci` and the workflow can never drift.

.PHONY: ci fmt vet build test race bench json loadtest

ci: fmt vet build test race

fmt:
	test -z "$$(gofmt -l .)"

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/par/... ./internal/jp/... ./internal/service/...

bench:
	go test -run '^$$' -bench 'BenchmarkTable2Orderings|BenchmarkJP' -benchtime 3x .

json:
	go run ./cmd/colorbench -json BENCH_local.json

# loadtest starts colord, drives it with colorload (>= 8 concurrent
# clients, >= 200 requests against a scale-12 Kronecker graph, every
# returned coloring verified client-side) and prints the latency summary
# and cache hit rate. Tune via COLORD_ADDR/LOAD_CLIENTS/LOAD_REQUESTS.
loadtest:
	./scripts/loadtest.sh
