GO ?= go

.PHONY: ci vet build test race bench json

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/par/... ./internal/jp/...

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkTable2Orderings|BenchmarkJP' -benchtime 3x .

json:
	$(GO) run ./cmd/colorbench -json BENCH_local.json
