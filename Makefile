# The fmt/vet/build/test/race recipes below are the CI contract: they
# must stay byte-for-byte identical to the run: lines of the `test` job
# in .github/workflows/ci.yml (TestMakefileMatchesWorkflow enforces it),
# so local `make ci` and the workflow can never drift.

.PHONY: ci fmt vet build test race bench json loadtest crashtest clustertest chaostest fuzz-smoke cover

ci: fmt vet build test race

fmt:
	test -z "$$(gofmt -l .)"

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/par/... ./internal/jp/... ./internal/speculate/... ./internal/service/... ./internal/cluster/... ./internal/faultinject/... ./internal/retry/... ./internal/obs/... ./internal/recolor/... ./internal/quality/...

bench:
	go test -run '^$$' -bench 'BenchmarkTable2Orderings|BenchmarkJP' -benchtime 3x .

json:
	go run ./cmd/colorbench -json BENCH_local.json

# loadtest starts colord, drives it with colorload (>= 8 concurrent
# clients, >= 200 requests against a scale-12 Kronecker graph, 20% of
# them mutation batches, every returned coloring verified client-side
# against the replayed mutation log) and prints the latency summary and
# cache hit rate. Tune via COLORD_ADDR/LOAD_CLIENTS/LOAD_REQUESTS/
# LOAD_MUTATE.
loadtest:
	./scripts/loadtest.sh

# crashtest is the durability gate: colord killed with -9 mid mixed
# color/mutate run, restarted against the same --data-dir, and
# colorload -resume verifies version continuity and every post-restart
# coloring against its replayed mutation journal; ends with a graceful
# SIGTERM (drain + WAL flush) and a reboot from the compacted snapshot.
crashtest:
	./scripts/crashtest.sh

# clustertest is the scale-out gate: a 3-node colord cluster driven
# through a non-owner node, kill -9 of the target graph's primary
# mid-run (failover must lose zero acked mutations — verified by
# colorload -resume against its journal), then a restart of the old
# primary that must catch up to the replication watermark and rejoin.
clustertest:
	./scripts/clustertest.sh

# chaostest is the fault-injection gate: a 3-node cluster booted with
# -fault-injection and driven through the seeded failure matrix —
# failed WAL fsyncs (degraded persistence + compaction self-heal), a
# seeded slow replication path under verified load, compacted-away
# records healed by automated snapshot resync, an isolated primary
# fencing itself behind its expired lease, and a crash injected between
# replication and the local WAL append, with colorload -resume proving
# zero acked-mutation loss. Seeds via CHAOS_SEEDS.
chaostest:
	./scripts/chaostest.sh

# fuzz-smoke gives each fuzz target a short budget (the CI gate; seed
# corpora live in internal/graphio/testdata/fuzz and
# internal/store/testdata/fuzz). Raise FUZZTIME locally for a real hunt.
FUZZTIME ?= 10s
fuzz-smoke:
	go test ./internal/graphio -run '^$$' -fuzz 'FuzzParseDIMACS$$' -fuzztime $(FUZZTIME)
	go test ./internal/graphio -run '^$$' -fuzz 'FuzzParseEdgeList$$' -fuzztime $(FUZZTIME)
	go test ./internal/graphio -run '^$$' -fuzz 'FuzzParseMatrixMarket$$' -fuzztime $(FUZZTIME)
	go test ./internal/store -run '^$$' -fuzz 'FuzzSnapshot$$' -fuzztime $(FUZZTIME)
	go test ./internal/store -run '^$$' -fuzz 'FuzzWAL$$' -fuzztime $(FUZZTIME)
	go test ./internal/service -run '^$$' -fuzz 'FuzzDecodeColorBin$$' -fuzztime $(FUZZTIME)

# cover enforces the >= 80% statement-coverage floor on the core
# packages (graph, jp, order, spec, verify, dynamic, store, cluster,
# faultinject, retry, gen, speculate, obs) and leaves
# the merged profile in coverage.out (uploaded as a CI artifact).
cover:
	./scripts/coverage.sh
