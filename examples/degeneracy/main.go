// Degeneracy analytics: the ADG ordering reused beyond coloring — the
// two applications the paper's conclusion singles out: approximate
// densest-subgraph discovery (§VII, after Dhulipala et al.) and maximal
// clique mining in degeneracy order ([49], [50]).
//
// Run: go run ./examples/degeneracy
package main

import (
	"fmt"
	"log"

	parcolor "repro"
)

func main() {
	// A community graph with one hot cluster: the densest subgraph is
	// the planted community, and cliques concentrate inside it.
	g, err := parcolor.Community(4000, 40, 0.35, 8000, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d Δ=%d d=%d\n",
		g.NumVertices(), g.NumEdges(), g.MaxDegree(), parcolor.Degeneracy(g))

	// 1. Densest subgraph via ADG-style batch peeling: O(log n) rounds
	//    for a 2(1+ε) guarantee instead of Θ(n) sequential peels.
	ds := parcolor.DensestSubgraph(g, 0.1, parcolor.Options{Procs: 0})
	fmt.Printf("\ndensest subgraph: %d vertices, density %.2f edges/vertex "+
		"(optimum ≤ %.2f×), found in %d parallel rounds\n",
		len(ds.Vertices), ds.Density, ds.ApproxFactor, ds.Rounds)

	// 2. Maximal cliques rooted in the ADG order (Bron–Kerbosch / ELS).
	count, maxSize := 0, 0
	parcolor.MaximalCliques(g, 0.1, parcolor.Options{Procs: 0, Seed: 3}, func(c []uint32) {
		count++
		if len(c) > maxSize {
			maxSize = len(c)
		}
	})
	fmt.Printf("maximal cliques: %d total, largest has %d vertices\n", count, maxSize)

	// 3. Coloring + recoloring stack: JP-ADG then iterated greedy, the
	//    orthogonal optimization §VII mentions.
	res, err := parcolor.Color(g, parcolor.JPADG, parcolor.Options{Seed: 5, Epsilon: 0.01})
	if err != nil {
		log.Fatal(err)
	}
	improved, k, err := parcolor.ImproveColoring(g, res.Colors, 4, 5)
	if err != nil {
		log.Fatal(err)
	}
	if err := parcolor.Verify(g, improved); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coloring: JP-ADG %d colors → %d after iterated-greedy recoloring\n",
		res.NumColors, k)
}
