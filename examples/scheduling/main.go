// Scheduling: color a task-conflict graph to assign conflict-free
// execution slots — the "conflicting task scheduling" application the
// paper's introduction motivates ([8]–[11]).
//
// Tasks that touch a shared resource cannot run in the same slot. Each
// color class is one slot, so fewer colors = a shorter schedule. JP-ADG's
// degeneracy-based bound translates directly into a schedule-length
// guarantee that the Δ+1 schemes cannot give.
//
// Run: go run ./examples/scheduling
package main

import (
	"fmt"
	"log"
	"math"

	parcolor "repro"
	"repro/internal/xrand"
)

const (
	numTasks     = 6000
	numResources = 2500
	maxResUse    = 3 // resources touched per task
)

func main() {
	// Synthesize a workload: every task locks 1..3 resources; a few hot
	// resources are shared widely (Zipf-ish skew), like a popular lock.
	rng := xrand.New(42)
	taskRes := make([][]int, numTasks)
	for t := range taskRes {
		k := 1 + rng.Intn(maxResUse)
		for i := 0; i < k; i++ {
			// Mildly skewed resource choice (density ∝ r^-1/6): hot
			// resources exist but no single one forms a giant clique.
			f := rng.Float64()
			taskRes[t] = append(taskRes[t], int(math.Pow(f, 1.2)*float64(numResources)))
		}
	}

	// Conflict graph: tasks sharing a resource are adjacent.
	byResource := make([][]uint32, numResources)
	for t, rs := range taskRes {
		for _, r := range rs {
			byResource[r] = append(byResource[r], uint32(t))
		}
	}
	var edges []parcolor.Edge
	for _, tasks := range byResource {
		for i := 0; i < len(tasks); i++ {
			for j := i + 1; j < len(tasks); j++ {
				edges = append(edges, parcolor.Edge{U: tasks[i], V: tasks[j]})
			}
		}
	}
	g, err := parcolor.NewGraph(numTasks, edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conflict graph: %d tasks, %d conflicts, Δ=%d, degeneracy=%d\n",
		g.NumVertices(), g.NumEdges(), g.MaxDegree(), parcolor.Degeneracy(g))

	// Schedule with three algorithms; slots = colors.
	opts := parcolor.Options{Seed: 1, Epsilon: 0.01}
	best := 1 << 30
	for _, algo := range []string{parcolor.JPADG, parcolor.JPLLF, parcolor.JPR, parcolor.ITR} {
		res, err := parcolor.Color(g, algo, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s schedule length: %d slots (%.3fs)\n",
			algo, res.NumColors, res.ReorderSeconds+res.ColorSeconds)
		if res.NumColors < best {
			best = res.NumColors
		}
	}

	// Materialize the JP-ADG schedule and double-check slot safety.
	res, err := parcolor.Color(g, parcolor.JPADG, opts)
	if err != nil {
		log.Fatal(err)
	}
	slots := make([][]uint32, res.NumColors+1)
	for task, slot := range res.Colors {
		slots[slot] = append(slots[slot], uint32(task))
	}
	if err := parcolor.Verify(g, res.Colors); err != nil {
		log.Fatal("schedule has a conflict: ", err)
	}
	fmt.Printf("JP-ADG schedule verified: %d slots, largest slot runs %d tasks in parallel\n",
		res.NumColors, largest(slots))
}

func largest(slots [][]uint32) int {
	best := 0
	for _, s := range slots {
		if len(s) > best {
			best = len(s)
		}
	}
	return best
}
