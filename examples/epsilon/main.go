// Epsilon tradeoff: the tunable parallelism-vs-quality knob of §IV-E and
// Fig. 3. Sweeping ε shows ADG's round count falling (more parallelism)
// while the coloring quality degrades only gently — the paper's headline
// usability story.
//
// Run: go run ./examples/epsilon
package main

import (
	"fmt"
	"log"
	"time"

	parcolor "repro"
)

func main() {
	g, err := parcolor.BarabasiAlbert(60000, 8, 5)
	if err != nil {
		log.Fatal(err)
	}
	d := parcolor.Degeneracy(g)
	fmt.Printf("graph: n=%d m=%d Δ=%d d=%d (d ≪ Δ: the regime of §IV-E)\n",
		g.NumVertices(), g.NumEdges(), g.MaxDegree(), d)
	fmt.Println("\n  eps    ADG-rounds   colors   bound(2(1+eps)d+1)   time")

	for _, eps := range []float64{0.0, 0.01, 0.1, 0.5, 1, 2, 4} {
		start := time.Now()
		ord := parcolor.ApproxDegeneracyOrder(g, eps, parcolor.Options{Seed: 1})
		res, err := parcolor.Color(g, parcolor.JPADG, parcolor.Options{Seed: 1, Epsilon: eps})
		if err != nil {
			log.Fatal(err)
		}
		bound, _ := parcolor.QualityBound(g, parcolor.JPADG, eps)
		fmt.Printf("  %-5.2f  %-11d  %-7d  %-19d  %v\n",
			eps, ord.Iterations, res.NumColors, bound, time.Since(start).Round(time.Millisecond))
	}

	fmt.Println("\nlarger eps ⇒ fewer rounds (more parallelism), slightly more colors —")
	fmt.Println("exactly the tunable tradeoff of Fig. 3.")
}
