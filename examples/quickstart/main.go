// Quickstart: generate a scale-free graph, color it with the paper's
// JP-ADG, and compare against the classic baselines.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	parcolor "repro"
)

func main() {
	// A Kronecker (RMAT) graph: 2^14 vertices, ~16 edges/vertex — the
	// scale-free shape of social networks, where the degeneracy d is far
	// below the maximum degree Δ and JP-ADG's d-based quality bound
	// shines.
	g, err := parcolor.Kronecker(14, 16, 1)
	if err != nil {
		log.Fatal(err)
	}
	d := parcolor.Degeneracy(g)
	fmt.Printf("graph: n=%d m=%d Δ=%d degeneracy d=%d\n",
		g.NumVertices(), g.NumEdges(), g.MaxDegree(), d)

	opts := parcolor.Options{Procs: 0, Seed: 7, Epsilon: 0.01}
	for _, algo := range []string{
		parcolor.JPADG,     // the paper's contribution: ≤ 2(1+ε)d+1 colors
		parcolor.DECADGITR, // speculative contribution: same bound
		parcolor.JPSL,      // best quality baseline, sequential ordering
		parcolor.JPLLF,     // fast parallel baseline, Δ+1 bound only
		parcolor.JPR,       // fastest, poor quality
		parcolor.ITR,       // classic speculative baseline
	} {
		res, err := parcolor.Color(g, algo, opts)
		if err != nil {
			log.Fatal(err)
		}
		bound, _ := parcolor.QualityBound(g, algo, opts.Epsilon)
		fmt.Printf("%-12s %4d colors (guarantee ≤ %5d)  reorder %.3fs + color %.3fs\n",
			algo, res.NumColors, bound, res.ReorderSeconds, res.ColorSeconds)
	}

	// The ADG ordering itself is reusable beyond coloring.
	ord := parcolor.ApproxDegeneracyOrder(g, 0.01, opts)
	fmt.Printf("ADG: %d parallel rounds; every vertex has ≤ %.2f·d neighbors ranked equal-or-higher\n",
		ord.Iterations, ord.ApproxFactor)
}
