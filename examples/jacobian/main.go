// Jacobian compression: the sparse-derivative application from the
// paper's introduction ([1]–[7], "what color is your Jacobian?").
//
// To estimate a sparse Jacobian with finite differences, columns that
// share no row may be evaluated together (one function evaluation per
// group). Grouping = coloring the column-intersection graph: columns are
// adjacent iff some row touches both. Colors = function evaluations, so
// JP-ADG's quality bound caps the evaluation count by the intersection
// graph's degeneracy rather than its maximum degree.
//
// Run: go run ./examples/jacobian
package main

import (
	"fmt"
	"log"

	parcolor "repro"
	"repro/internal/xrand"
)

const (
	rows      = 4000
	cols      = 2500
	nnzPerRow = 4
)

func main() {
	// Random sparse matrix pattern: each row touches a few columns, with
	// a handful of dense columns (like a shared time variable).
	rng := xrand.New(7)
	rowCols := make([][]uint32, rows)
	for r := range rowCols {
		for i := 0; i < nnzPerRow; i++ {
			rowCols[r] = append(rowCols[r], uint32(rng.Intn(cols)))
		}
		if r%200 == 0 { // sprinkle dense columns
			rowCols[r] = append(rowCols[r], 0, 1)
		}
	}

	// Column-intersection graph.
	var edges []parcolor.Edge
	for _, cs := range rowCols {
		for i := 0; i < len(cs); i++ {
			for j := i + 1; j < len(cs); j++ {
				if cs[i] != cs[j] {
					edges = append(edges, parcolor.Edge{U: cs[i], V: cs[j]})
				}
			}
		}
	}
	g, err := parcolor.NewGraph(cols, edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("column-intersection graph: %d columns, %d intersections, Δ=%d, d=%d\n",
		g.NumVertices(), g.NumEdges(), g.MaxDegree(), parcolor.Degeneracy(g))

	opts := parcolor.Options{Seed: 3, Epsilon: 0.01}
	for _, algo := range []string{parcolor.JPADG, parcolor.GreedySD, parcolor.JPLF, parcolor.JPR} {
		res, err := parcolor.Color(g, algo, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s needs %4d function evaluations\n", algo, res.NumColors)
	}

	// Check group validity directly against the matrix pattern: no two
	// same-colored columns may share a row (structural orthogonality).
	res, err := parcolor.Color(g, parcolor.JPADG, opts)
	if err != nil {
		log.Fatal(err)
	}
	for r, cs := range rowCols {
		seen := map[uint32]uint32{}
		for _, c := range cs {
			if prev, ok := seen[res.Colors[c]]; ok && prev != c {
				log.Fatalf("row %d: columns %d and %d share color %d", r, prev, c, res.Colors[c])
			}
			seen[res.Colors[c]] = c
		}
	}
	fmt.Printf("JP-ADG grouping verified: every group is structurally orthogonal (%d groups)\n",
		res.NumColors)
}
