package parcolor

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/greedy"
	"repro/internal/jp"
	"repro/internal/order"
	"repro/internal/verify"
)

// TestJPEqualsSequentialGreedyForEveryOrdering is the strongest cross-
// validation in the repository: Jones–Plassmann is exactly the parallel
// execution of sequential Greedy under the same total priority order
// (§IV-A), so for every ordering heuristic the two engines must emit the
// IDENTICAL color for every vertex. A scheduling bug in JP or an
// ordering bug in Greedy cannot pass this.
func TestJPEqualsSequentialGreedyForEveryOrdering(t *testing.T) {
	graphs := map[string]*graph.Graph{}
	for name, mk := range map[string]func() (*graph.Graph, error){
		"er":   func() (*graph.Graph, error) { return gen.ErdosRenyiGNM(400, 2000, 1, 2) },
		"kron": func() (*graph.Graph, error) { return gen.Kronecker(9, 8, 2, 2) },
		"comm": func() (*graph.Graph, error) { return gen.Community(200, 4, 0.4, 200, 3, 2) },
		"grid": func() (*graph.Graph, error) { return gen.Grid2D(15, 15, 2) },
	} {
		g, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		graphs[name] = g
	}
	for gname, g := range graphs {
		orderings := map[string]*order.Ordering{
			"FF":    order.FirstFit(g),
			"R":     order.Random(g, 7),
			"LF":    order.LargestFirst(g, 7),
			"LLF":   order.LargestLogFirst(g, 7),
			"SL":    order.SmallestLast(g),
			"SLL":   order.SmallestLogLast(g, 7, 2),
			"ID":    order.IncidenceDegree(g),
			"ADG":   order.ADG(g, order.ADGOptions{Epsilon: 0.1, Procs: 2, Seed: 7}),
			"ADG-O": order.ADG(g, order.ADGOptions{Epsilon: 0.1, Procs: 2, Seed: 7, Sorted: true}),
			"ADG-M": order.ADG(g, order.ADGOptions{Median: true, Procs: 2, Seed: 7}),
		}
		for oname, ord := range orderings {
			par := jp.Color(g, ord, 4)
			seq := greedy.Color(g, ord)
			for v := range par.Colors {
				if par.Colors[v] != seq.Colors[v] {
					t.Errorf("%s/%s: JP and Greedy disagree at vertex %d (%d vs %d)",
						gname, oname, v, par.Colors[v], seq.Colors[v])
					break
				}
			}
		}
	}
}

// TestCorePackageAgreesWithFacade ensures the internal/core composition
// and the public facade run the same underlying algorithms.
func TestCorePackageAgreesWithFacade(t *testing.T) {
	g, err := gen.Kronecker(10, 8, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{Epsilon: 0.1, Procs: 2, Seed: 5}
	out, err := core.JPADG(g, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Color(g, JPADG, Options{Epsilon: 0.1, Procs: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for v := range out.Colors {
		if out.Colors[v] != res.Colors[v] {
			t.Fatalf("core.JPADG and facade JP-ADG disagree at vertex %d", v)
		}
	}
}

// TestAllAlgorithmsRespectChromaticLowerBound sanity-checks against the
// clique number: a graph containing K_k needs at least k colors, so no
// algorithm may report fewer.
func TestAllAlgorithmsRespectChromaticLowerBound(t *testing.T) {
	// K12 plus a sparse halo.
	edges := []Edge{}
	for u := 0; u < 12; u++ {
		for v := u + 1; v < 12; v++ {
			edges = append(edges, Edge{U: uint32(u), V: uint32(v)})
		}
	}
	for v := 12; v < 100; v++ {
		edges = append(edges, Edge{U: uint32(v - 1), V: uint32(v)})
	}
	g, err := NewGraph(100, edges)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range Algorithms() {
		res, err := Color(g, algo, Options{Procs: 2, Seed: 3, Epsilon: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		if res.NumColors < 12 {
			t.Errorf("%s reported %d colors; K12 requires 12 — improper or miscounted", algo, res.NumColors)
		}
	}
}

// TestSeededReproducibilityEndToEnd re-runs each headline algorithm twice
// with the same seed and demands bit-identical colorings.
func TestSeededReproducibilityEndToEnd(t *testing.T) {
	g, err := gen.Community(300, 5, 0.3, 400, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{JPADG, JPADGM, DECADG, DECADGITR, ITR, ITRB, LubyMIS} {
		a, err := Color(g, algo, Options{Procs: 2, Seed: 21, Epsilon: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Color(g, algo, Options{Procs: 2, Seed: 21, Epsilon: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		for v := range a.Colors {
			if a.Colors[v] != b.Colors[v] {
				t.Errorf("%s: same-seed runs diverge at vertex %d", algo, v)
				break
			}
		}
	}
}

// TestColoringPipelineWithIOAndRecolor exercises the full library
// pipeline a downstream user would run: generate → write → read →
// color → improve → verify.
func TestColoringPipelineWithIOAndRecolor(t *testing.T) {
	g1, err := BarabasiAlbert(1000, 5, 13)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g1); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Color(g2, DECADGITR, Options{Seed: 2, Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	improved, k, err := ImproveColoring(g2, res.Colors, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if k > res.NumColors {
		t.Fatal("recoloring increased colors")
	}
	if err := Verify(g2, improved); err != nil {
		t.Fatal(err)
	}
	if !verify.IsProper(g2, improved, 2) {
		t.Fatal("final coloring improper")
	}
}
