// Benchmarks regenerating every table and figure of the paper's
// evaluation (§VI). Each Benchmark maps to one experiment of
// EXPERIMENTS.md's index (E1–E9); color counts, rounds and memory proxies
// are reported as custom benchmark metrics so `go test -bench` output
// carries the same quantities the paper's plots show. The colorbench CLI
// prints the full row/series form of the same experiments.
package parcolor

import (
	"fmt"
	"testing"

	"repro/internal/clique"
	"repro/internal/densest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/jp"
	"repro/internal/kcore"
	"repro/internal/order"
	"repro/internal/stats"
)

// benchGraph builds the shared medium Kronecker instance (scale 13,
// edge factor 16 ≈ 8k vertices / 105k edges after dedup).
func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := gen.Kronecker(13, 16, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// mustRun runs a registered algorithm, failing the benchmark on a run
// error (only cancellation can produce one, so it never fires here).
func mustRun(b *testing.B, a harness.Algorithm, g *graph.Graph, cfg harness.Config) *harness.RunResult {
	b.Helper()
	res, err := a.Run(g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkSuiteStats is E9 (Table V stand-in): dataset construction and
// structural statistics including exact degeneracy.
func BenchmarkSuiteStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		suite, err := harness.BuildSuite(1)
		if err != nil {
			b.Fatal(err)
		}
		var totalD int
		for _, bg := range suite {
			totalD += kcore.Degeneracy(bg.G)
		}
		b.ReportMetric(float64(totalD), "sum-degeneracy")
	}
}

// BenchmarkTable2Orderings is E1 (Table II): every ordering heuristic on
// the shared graph; per-op metrics report rounds and the measured
// approximation factor.
func BenchmarkTable2Orderings(b *testing.B) {
	g := benchGraph(b)
	d := kcore.Degeneracy(g)
	entries := []struct {
		name string
		mk   func() *order.Ordering
	}{
		{"FF", func() *order.Ordering { return order.FirstFit(g) }},
		{"R", func() *order.Ordering { return order.Random(g, 1) }},
		{"LF", func() *order.Ordering { return order.LargestFirst(g, 1) }},
		{"LLF", func() *order.Ordering { return order.LargestLogFirst(g, 1) }},
		{"SL", func() *order.Ordering { return order.SmallestLast(g) }},
		{"SLL", func() *order.Ordering { return order.SmallestLogLast(g, 1, 0) }},
		{"ASL", func() *order.Ordering { return order.ApproxSmallestLast(g, 1, 0) }},
		{"ADG", func() *order.Ordering {
			return order.ADG(g, order.ADGOptions{Epsilon: 0.01, Seed: 1})
		}},
		{"ADG-M", func() *order.Ordering {
			return order.ADG(g, order.ADGOptions{Median: true, Seed: 1})
		}},
		{"ADG-O", func() *order.Ordering {
			return order.ADG(g, order.ADGOptions{Epsilon: 0.01, Seed: 1, Sorted: true})
		}},
	}
	for _, e := range entries {
		b.Run(e.name, func(b *testing.B) {
			var ord *order.Ordering
			for i := 0; i < b.N; i++ {
				ord = e.mk()
			}
			b.ReportMetric(float64(ord.Iterations), "rounds")
			back := order.MaxEqualOrHigherRankNeighbors(g, ord.Rank)
			if d > 0 {
				b.ReportMetric(float64(back)/float64(d), "approx-factor")
			}
		})
	}
}

// BenchmarkJP isolates the JP coloring phase — the frontier fork-join hot
// path — under one fixed ADG-O ordering, sweeping the worker count. On a
// single core the gap between p=1 (inline) and p>1 is pure scheduler
// overhead, which is exactly what the persistent pool is meant to remove.
func BenchmarkJP(b *testing.B) {
	g := benchGraph(b)
	ord := order.ADG(g, order.ADGOptions{Epsilon: 0.01, Seed: 1, Sorted: true})
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			var res *jp.Result
			for i := 0; i < b.N; i++ {
				res = jp.Color(g, ord, p)
			}
			b.ReportMetric(float64(res.Rounds), "rounds")
		})
	}
}

// BenchmarkTable3Algorithms is E2 (Table III): the full algorithm matrix
// on the shared graph; colors reported per op.
func BenchmarkTable3Algorithms(b *testing.B) {
	g := benchGraph(b)
	cfg := harness.Config{Procs: 0, Seed: 1, Epsilon: 0.01}
	for _, a := range harness.Registry() {
		b.Run(a.Name, func(b *testing.B) {
			var colors int
			for i := 0; i < b.N; i++ {
				res := mustRun(b, a, g, cfg)
				colors = res.NumColors
			}
			b.ReportMetric(float64(colors), "colors")
		})
	}
}

// BenchmarkFig1RuntimeQuality is E3 (Fig. 1): per suite graph and
// algorithm, total runtime with the reorder share and relative quality
// reported as metrics.
func BenchmarkFig1RuntimeQuality(b *testing.B) {
	suite, err := harness.BuildSuite(1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := harness.Config{Procs: 0, Seed: 1, Epsilon: 0.01}
	for _, bg := range suite {
		baseAlgo, err := harness.Lookup("JP-R")
		if err != nil {
			b.Fatal(err)
		}
		base := mustRun(b, baseAlgo, bg.G, cfg)
		for _, name := range []string{"JP-ADG", "JP-ADG-M", "JP-SL", "JP-SLL", "JP-LLF", "JP-R", "ITR", "DEC-ADG-ITR"} {
			a, err := harness.Lookup(name)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%s", bg.Name, name), func(b *testing.B) {
				var res *harness.RunResult
				for i := 0; i < b.N; i++ {
					res = mustRun(b, a, bg.G, cfg)
				}
				b.ReportMetric(float64(res.NumColors), "colors")
				b.ReportMetric(float64(res.NumColors)/float64(base.NumColors), "colors-vs-JP-R")
				if t := res.TotalSeconds(); t > 0 {
					b.ReportMetric(res.ReorderSeconds/t, "reorder-share")
				}
			})
		}
	}
}

// BenchmarkFig2WeakScaling is E4 (Fig. 2 left): Kronecker edge factor and
// worker count grown together; flat ns/op = good weak scaling.
func BenchmarkFig2WeakScaling(b *testing.B) {
	for _, pt := range []struct{ ef, procs int }{{1, 1}, {2, 2}, {4, 4}, {8, 8}} {
		g, err := gen.Kronecker(13, pt.ef, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, name := range []string{"JP-ADG", "DEC-ADG-ITR", "JP-LLF", "ITR"} {
			a, err := harness.Lookup(name)
			if err != nil {
				b.Fatal(err)
			}
			cfg := harness.Config{Procs: pt.procs, Seed: 1, Epsilon: 0.01}
			b.Run(fmt.Sprintf("%s/ef%d-p%d", name, pt.ef, pt.procs), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					mustRun(b, a, g, cfg)
				}
			})
		}
	}
}

// BenchmarkFig2StrongScaling is E5 (Fig. 2 mid/right): fixed graph,
// worker count swept.
func BenchmarkFig2StrongScaling(b *testing.B) {
	g := benchGraph(b)
	for _, name := range []string{"JP-ADG", "DEC-ADG-ITR", "JP-LLF", "JP-R", "JP-SL", "ITR"} {
		a, err := harness.Lookup(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range []int{1, 2, 4} {
			cfg := harness.Config{Procs: p, Seed: 1, Epsilon: 0.01}
			b.Run(fmt.Sprintf("%s/p%d", name, p), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					mustRun(b, a, g, cfg)
				}
			})
		}
	}
}

// BenchmarkFig3Epsilon is E6 (Fig. 3): ε swept for JP-ADG and
// DEC-ADG-ITR; colors and ADG rounds reported as metrics.
func BenchmarkFig3Epsilon(b *testing.B) {
	g := benchGraph(b)
	for _, eps := range []float64{0.01, 0.1, 1.0} {
		for _, name := range []string{"JP-ADG", "DEC-ADG-ITR"} {
			a, err := harness.Lookup(name)
			if err != nil {
				b.Fatal(err)
			}
			cfg := harness.Config{Procs: 0, Seed: 1, Epsilon: eps}
			b.Run(fmt.Sprintf("%s/eps%.2f", name, eps), func(b *testing.B) {
				var res *harness.RunResult
				for i := 0; i < b.N; i++ {
					res = mustRun(b, a, g, cfg)
				}
				b.ReportMetric(float64(res.NumColors), "colors")
				b.ReportMetric(float64(res.Rounds), "rounds")
			})
		}
	}
}

// BenchmarkFig4Memory is E7 (Fig. 4): memory-pressure software proxies
// per algorithm (edges scanned and atomics per edge, conflicts per
// vertex) — the PAPI substitution documented in EXPERIMENTS.md.
func BenchmarkFig4Memory(b *testing.B) {
	g := benchGraph(b)
	m := float64(g.NumEdges())
	cfg := harness.Config{Procs: 0, Seed: 1, Epsilon: 0.01}
	for _, name := range []string{"JP-ADG", "JP-SL", "JP-LLF", "JP-R", "ITR", "DEC-ADG-ITR", "GM"} {
		a, err := harness.Lookup(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			var res *harness.RunResult
			for i := 0; i < b.N; i++ {
				res = mustRun(b, a, g, cfg)
			}
			b.ReportMetric(float64(res.EdgesScanned)/m, "edges-scanned/m")
			b.ReportMetric(float64(res.AtomicOps)/m, "atomics/m")
			b.ReportMetric(float64(res.Conflicts)/float64(g.NumVertices()), "conflicts/n")
		})
	}
}

// BenchmarkFig5Profile is E8 (Fig. 5): computing the Dolan–Moré quality
// profile over the suite; the fraction of instances where JP-ADG is
// within 5% of the best is reported as a metric.
func BenchmarkFig5Profile(b *testing.B) {
	suite, err := harness.BuildSuite(1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := harness.Config{Procs: 0, Seed: 1, Epsilon: 0.01}
	algos := []string{"JP-ADG", "JP-SL", "JP-SLL", "JP-LLF", "JP-LF", "JP-R", "JP-FF", "ITR", "DEC-ADG-ITR"}
	results := map[string][]float64{}
	for _, name := range algos {
		a, err := harness.Lookup(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, bg := range suite {
			res := mustRun(b, a, bg.G, cfg)
			results[name] = append(results[name], float64(res.NumColors))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		profiles, err := stats.PerfProfile(results)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(stats.ProfileAt(profiles["JP-ADG"], 1.05), "JP-ADG-within-1.05")
	}
}

// BenchmarkAblationADG regenerates §VI-J's design-choice analysis as
// sub-benchmarks: push vs pull UPDATE, cached degree sums, batch sorting
// with three integer sorts, and the median threshold.
func BenchmarkAblationADG(b *testing.B) {
	g := benchGraph(b)
	variants := []struct {
		name string
		opts order.ADGOptions
	}{
		{"push", order.ADGOptions{Epsilon: 0.01, Seed: 1}},
		{"pull-crew", order.ADGOptions{Epsilon: 0.01, Seed: 1, CREW: true}},
		{"cached-sums", order.ADGOptions{Epsilon: 0.01, Seed: 1, CacheDegreeSums: true}},
		{"sorted-counting", order.ADGOptions{Epsilon: 0.01, Seed: 1, Sorted: true}},
		{"sorted-radix", order.ADGOptions{Epsilon: 0.01, Seed: 1, Sorted: true, Sort: order.SortRadix}},
		{"sorted-quick", order.ADGOptions{Epsilon: 0.01, Seed: 1, Sorted: true, Sort: order.SortQuick}},
		{"median", order.ADGOptions{Seed: 1, Median: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var ord *order.Ordering
			for i := 0; i < b.N; i++ {
				ord = order.ADG(g, v.opts)
			}
			b.ReportMetric(float64(ord.Iterations), "rounds")
		})
	}
}

// BenchmarkDegeneracyApplications exercises the ADG-reuse applications
// of §VII: densest subgraph by batch peeling and ELS clique counting.
func BenchmarkDegeneracyApplications(b *testing.B) {
	g, err := gen.BarabasiAlbert(20000, 6, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("densest-adg-peel", func(b *testing.B) {
		var density float64
		for i := 0; i < b.N; i++ {
			density = densest.ADGPeel(g, 0.1, 0).Density
		}
		b.ReportMetric(density, "density")
	})
	b.Run("cliques-els", func(b *testing.B) {
		keys := clique.OrderADG(g, 0.1, 1, 0)
		b.ResetTimer()
		var count int
		for i := 0; i < b.N; i++ {
			count, _ = clique.Count(g, keys, 0)
		}
		b.ReportMetric(float64(count), "cliques")
	})
}
