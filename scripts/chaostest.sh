#!/usr/bin/env bash
# Chaos smoke test (ISSUE 6): a 3-node colord cluster booted with
# -fault-injection and driven through a deterministic, seeded fault
# matrix — every failure mode the robustness work claims to survive,
# injected on purpose instead of waited for:
#
#   A  failed WAL fsyncs on a graph's primary -> degraded persistence
#      is reported honestly (persistErrors, writes still acked), and an
#      admin compaction self-heals it
#   B  a slow replication path (seeded probabilistic delays) under a
#      mixed color/mutate workload -> retries/timeouts absorb it with
#      every returned coloring still verified
#   C  a partitioned replica whose missed records the primary compacts
#      away -> on heal the replica converges via automated snapshot
#      resync (cluster.resyncs advances), zero manual steps
#   D  full isolation of a primary past its lease term -> the fenced
#      ex-primary refuses direct writes (no fork is ever acked) while
#      the majority side keeps accepting; on heal it converges
#   E  a crash injected between replication and the local WAL append
#      (the nastiest window) -> failover, restart, rejoin, and
#      colorload -resume proves zero acked-mutation loss end to end
#
# Seeds: CHAOS_SEEDS (default "1 7") re-runs the probabilistic phase B
# with each seed; the same seed always yields the same fault pattern.
# Requires jq (present on the CI runners; apt install jq locally).
set -euo pipefail
cd "$(dirname "$0")/.."

BASE_PORT="${CHAOS_BASE_PORT:-8781}"
SPEC="${CHAOS_SPEC:-kron:9}"
GRAPH="${CHAOS_GRAPH:-chaosg}"
CLIENTS="${CHAOS_CLIENTS:-4}"
REQUESTS="${CHAOS_REQUESTS:-200}"
SEEDS="${CHAOS_SEEDS:-1 7}"

command -v jq >/dev/null || { echo "chaostest: jq is required" >&2; exit 1; }

PORTS=("$BASE_PORT" "$((BASE_PORT + 1))" "$((BASE_PORT + 2))")
URLS=()
for p in "${PORTS[@]}"; do URLS+=("http://127.0.0.1:$p"); done
PEERS="$(IFS=,; echo "${URLS[*]}")"

WORK="$(mktemp -d)"
JOURNAL="$WORK/mutations.jsonl"
declare -A PIDS=()
cleanup() {
    for pid in "${PIDS[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

mkdir -p bin
go build -o bin/colord ./cmd/colord
go build -o bin/colorload ./cmd/colorload

start_node() {
    local i="$1"
    bin/colord -addr "127.0.0.1:${PORTS[$i]}" -max-inflight 4 \
        -data-dir "$WORK/node$i" \
        -cluster-self "${URLS[$i]}" -cluster-peers "$PEERS" \
        -cluster-replicas 2 -cluster-probe-interval 250ms -cluster-fail-after 2 \
        -cluster-replication-timeout 1s -cluster-lease 1s \
        -fault-injection &
    PIDS[$i]=$!
}

wait_healthy() {
    local url="$1"
    for _ in $(seq 100); do
        if curl -sf "$url/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "chaostest: $url never became healthy" >&2
    exit 1
}

# arm URL SPEC: replace the node's fault schedule (empty spec disarms).
arm() {
    curl -sf -X POST "$1/v1/admin/faults" \
        -d "$(jq -nc --arg s "$2" '{spec: $s}')" >/dev/null
}

node_version() { # node_version URL GRAPH -> local version ("" if absent)
    curl -sf "$1/v1/internal/version?graph=$2" 2>/dev/null | jq -r .version || true
}

metric() { # metric URL JQ_EXPR
    curl -sf "$1/metrics" | jq -r "$2"
}

# roles GRAPH: resolve PRIMARY/REPLICA/PRIMARY_IDX for the graph from
# cluster status (replicas=2: one primary, one replica, one outsider).
# A node's status lists only graphs it holds locally, so poll every
# node until one of the placement members answers.
roles() {
    local g="$1" status
    PRIMARY="" REPLICA=""
    for _ in $(seq 50); do
        for u in "${URLS[@]}"; do
            status="$(curl -sf "$u/v1/cluster/status" 2>/dev/null)" || continue
            PRIMARY="$(echo "$status" | jq -r --arg g "$g" '.graphs[] | select(.name == $g) | .primary')"
            REPLICA="$(echo "$status" | jq -r --arg g "$g" --arg p "$PRIMARY" \
                '.graphs[] | select(.name == $g) | .placement[] | select(. != $p)' | head -1)"
            if [ -n "$PRIMARY" ] && [ -n "$REPLICA" ]; then break 2; fi
        done
        sleep 0.1
    done
    [ -n "$PRIMARY" ] && [ -n "$REPLICA" ] || { echo "chaostest: no placement for $g" >&2; exit 1; }
    PRIMARY_IDX=""
    for i in 0 1 2; do
        if [ "${URLS[$i]}" = "$PRIMARY" ]; then PRIMARY_IDX="$i"; fi
    done
}

# wait_version URL GRAPH WANT TRIES: poll until the node's local
# version reaches WANT.
wait_version() {
    local v
    for _ in $(seq "$4"); do
        v="$(node_version "$1" "$2")"
        if [ -n "${v:-}" ] && [ "$v" != "null" ] && [ "$v" -ge "$3" ]; then return 0; fi
        sleep 0.1
    done
    echo "chaostest: $1 stuck at version $(node_version "$1" "$2"), want >= $3 for $2" >&2
    exit 1
}

echo "chaostest: booting 3 fault-injectable nodes on ports ${PORTS[*]}"
for i in 0 1 2; do start_node "$i"; done
for u in "${URLS[@]}"; do wait_healthy "$u"; done

########################################################################
echo "chaostest: phase A — failed WAL fsyncs degrade persistence honestly, compaction self-heals"
FG="fsyncg"
curl -sf -X POST "${URLS[0]}/v1/graphs" -d "{\"name\":\"$FG\",\"spec\":\"kron:8\"}" >/dev/null
roles "$FG"
arm "$PRIMARY" "point=wal.fsync,mode=fail,count=3"
curl -sf -X POST "$PRIMARY/v1/graphs/$FG/mutate" -d '{"addEdges":[[1,101]]}' >/dev/null
perr="$(metric "$PRIMARY" .persistErrors)"
[ "$perr" -ge 1 ] || { echo "chaostest: injected fsync failure not counted (persistErrors=$perr)" >&2; exit 1; }
arm "$PRIMARY" ""
curl -sf -X POST "$PRIMARY/v1/admin/compact" -d "{\"graph\":\"$FG\"}" >/dev/null
persisted="$(curl -sf -X POST "$PRIMARY/v1/graphs/$FG/mutate" -d '{"addEdges":[[2,102]]}' | jq -r .persisted)"
[ "$persisted" = "true" ] || { echo "chaostest: persistence not healed after compaction (persisted=$persisted)" >&2; exit 1; }
echo "chaostest: phase A ok — persistErrors=$perr while degraded, durable again after compaction"

########################################################################
echo "chaostest: phase B — seeded slow replication under load (seeds: $SEEDS)"
curl -sf -X POST "${URLS[0]}/v1/graphs" -d "{\"name\":\"$GRAPH\",\"spec\":\"$SPEC\"}" >/dev/null
roles "$GRAPH"
OUTSIDER=""
for u in "${URLS[@]}"; do
    if [ "$u" != "$PRIMARY" ] && [ "$u" != "$REPLICA" ]; then OUTSIDER="$u"; fi
done
[ -n "$OUTSIDER" ] || { echo "chaostest: no outsider for $GRAPH" >&2; exit 1; }
RESUME=""
for seed in $SEEDS; do
    arm "$PRIMARY" "point=rpc,label=/v1/internal/replicate,mode=delay,delay=150ms,prob=0.5,seed=$seed"
    # shellcheck disable=SC2086
    bin/colorload -addr "$OUTSIDER" -graph "$GRAPH" -spec "$SPEC" \
        -c "$CLIENTS" -n "$REQUESTS" -verify -mutate-frac 0.3 \
        -request-timeout 30s -mutation-log "$JOURNAL" $RESUME
    RESUME="-resume"
    arm "$PRIMARY" ""
done
echo "chaostest: phase B ok — every coloring verified under injected replication delays"

########################################################################
echo "chaostest: phase C — compacted-away records force an automated snapshot resync"
GG="gapg"
curl -sf -X POST "${URLS[0]}/v1/graphs" -d "{\"name\":\"$GG\",\"spec\":\"kron:8\"}" >/dev/null
roles "$GG"
P2="$PRIMARY" R2="$REPLICA"
arm "$P2" "point=rpc,label=$R2,mode=fail"
sleep 1 # probes mark the replica down
for i in 1 2 3 4 5; do
    curl -sf -X POST "$P2/v1/graphs/$GG/mutate" -d "{\"addEdges\":[[$i,$((i + 100))]]}" >/dev/null
done
curl -sf -X POST "$P2/v1/admin/compact" -d "{\"graph\":\"$GG\"}" >/dev/null
[ "$(node_version "$R2" "$GG")" = "0" ] || { echo "chaostest: replica saw writes through the partition" >&2; exit 1; }
arm "$P2" ""
sleep 1 # probes revive the replica
curl -sf -X POST "$P2/v1/graphs/$GG/mutate" -d '{"addEdges":[[6,106]]}' >/dev/null
wait_version "$R2" "$GG" 6 100
resyncs="$(metric "$R2" .cluster.resyncs)"
[ "$resyncs" -ge 1 ] || { echo "chaostest: replica converged without a recorded resync?" >&2; exit 1; }
echo "chaostest: phase C ok — replica adopted the primary's snapshot (resyncs=$resyncs) and caught up to v6"

########################################################################
echo "chaostest: phase D — isolated primary fences itself after its lease expires"
# Blackhole every link touching the primary, in BOTH directions: a real
# partition, as the lease protocol models it.
arm "$P2" "point=rpc,mode=blackhole"
for u in "${URLS[@]}"; do
    if [ "$u" != "$P2" ]; then arm "$u" "point=rpc,label=$P2,mode=blackhole"; fi
done
sleep 3 # > lease term (1s) + probe detection on both sides
code="$(curl -s -o "$WORK/fenced.json" -w '%{http_code}' --max-time 30 \
    -X POST "$P2/v1/graphs/$GG/mutate" -d '{"addEdges":[[7,107]]}')"
if [ "$code" != "503" ] || ! grep -q fenced "$WORK/fenced.json"; then
    echo "chaostest: isolated ex-primary answered $code to a direct write, want a 503 naming the fence:" >&2
    cat "$WORK/fenced.json" >&2
    exit 1
fi
# The majority side must keep accepting writes for the graph.
alive=""
for u in "${URLS[@]}"; do
    if [ "$u" != "$P2" ]; then alive="$u"; fi
done
accepted=""
for _ in $(seq 100); do
    if curl -sf -X POST "$alive/v1/graphs/$GG/mutate" -d '{"addEdges":[[8,108]]}' >/dev/null 2>&1; then
        accepted=1
        break
    fi
    sleep 0.1
done
[ -n "$accepted" ] || { echo "chaostest: majority side never accepted a write during the isolation" >&2; exit 1; }
fenced="$(metric "$P2" .cluster.leaseFenced)"
[ "$fenced" -ge 1 ] || { echo "chaostest: fencing not counted (leaseFenced=$fenced)" >&2; exit 1; }
for u in "${URLS[@]}"; do arm "$u" ""; done
head_ver="$(node_version "$alive" "$GG")"
# Catch-up rides the write path, not the prober: nudge a no-op write
# through the healed node's ownership (retrying while liveness views
# reconverge) so it pulls the tail it missed while fenced.
for _ in $(seq 100); do
    if curl -sf -X POST "$P2/v1/graphs/$GG/mutate" -d '{}' >/dev/null 2>&1; then break; fi
    sleep 0.1
done
wait_version "$P2" "$GG" "$head_ver" 150
echo "chaostest: phase D ok — fenced write refused (leaseFenced=$fenced), majority progressed, healed node converged at v$head_ver"

########################################################################
echo "chaostest: phase E — crash between replication and the local WAL append, then zero-loss recovery"
roles "$GRAPH"
arm "$PRIMARY" "point=crash.after-replicate,mode=crash,count=1"
# The crash kills the primary mid-run: tolerate the transport errors,
# the journal + resume reconcile whether the dying ack landed.
bin/colorload -addr "$OUTSIDER" -graph "$GRAPH" -spec "$SPEC" \
    -c "$CLIENTS" -n 150 -verify -mutate-frac 0.4 -request-timeout 30s \
    -mutation-log "$JOURNAL" -resume -tolerate-request-errors
wait "${PIDS[$PRIMARY_IDX]}" 2>/dev/null || true
start_node "$PRIMARY_IDX"
wait_healthy "$PRIMARY"
head_ver="$(node_version "$REPLICA" "$GRAPH")"
# Rejoin catch-up rides the write path: nudge a no-op write through the
# restarted node (it recovered BEHIND its replicas — the crash hit
# before the local WAL append) until liveness reconverges.
for _ in $(seq 100); do
    if curl -sf -X POST "$PRIMARY/v1/graphs/$GRAPH/mutate" -d '{}' >/dev/null 2>&1; then break; fi
    sleep 0.1
done
wait_version "$PRIMARY" "$GRAPH" "$head_ver" 150
# Strict final pass across all three nodes: -resume REQUIRES the
# cluster to sit exactly at the journal's version — an acked mutation
# lost in the crash window would fail here — and verifies every
# returned coloring cross-node.
bin/colorload -addr "$PRIMARY,$REPLICA,$OUTSIDER" -graph "$GRAPH" -spec "$SPEC" \
    -c "$CLIENTS" -n 150 -verify -mutate-frac 0.2 \
    -mutation-log "$JOURNAL" -resume
echo "chaostest: phase E ok — crashed primary rejoined at v$head_ver, journal replay proves zero acked loss"

echo "chaostest: OK — fsync failures, seeded slow links, snapshot resync, lease fencing, crash-after-replicate all survived (seeds: $SEEDS)"
