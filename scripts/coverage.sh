#!/usr/bin/env bash
# Coverage gate: the core packages must hold >= COVER_THRESHOLD (80%)
# statement coverage. Writes the merged profile to coverage.out (the CI
# coverage job uploads it as an artifact) and fails listing every
# package under the floor.
set -euo pipefail
cd "$(dirname "$0")/.."

THRESHOLD="${COVER_THRESHOLD:-80}"
PKGS="repro/internal/graph repro/internal/jp repro/internal/order \
      repro/internal/spec repro/internal/verify repro/internal/dynamic \
      repro/internal/store repro/internal/cluster \
      repro/internal/faultinject repro/internal/retry \
      repro/internal/gen repro/internal/speculate repro/internal/obs \
      repro/internal/recolor repro/internal/quality"
# Every package above must print a coverage line: a package that loses
# its tests reports "[no test files]" instead, which must fail the
# gate, not slip past it.
EXPECTED=15

summary="$(mktemp)"
trap 'rm -f "$summary"' EXIT

# shellcheck disable=SC2086
go test -coverprofile=coverage.out $PKGS | tee "$summary"

awk -v min="$THRESHOLD" -v expected="$EXPECTED" '
  /coverage:/ {
    for (i = 1; i <= NF; i++) {
      if ($i == "coverage:") {
        pct = $(i + 1)
        sub(/%.*/, "", pct)
        if (pct + 0 < min + 0) {
          printf "coverage gate: %s at %s%% is below the %s%% floor\n", $2, pct, min
          bad = 1
        }
        seen++
      }
    }
  }
  END {
    if (seen != expected) {
      printf "coverage gate: %d coverage lines parsed, want %d (package without tests?)\n", seen, expected
      exit 1
    }
    if (bad) exit 1
    printf "coverage gate: all %d core packages >= %s%%\n", seen, min
  }
' "$summary"
