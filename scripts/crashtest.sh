#!/usr/bin/env bash
# Crash-recovery integration test (EXPERIMENTS.md E12, ISSUE 4): start
# colord with a data directory, drive a mixed color/mutate workload,
# kill -9 the daemon mid-run, restart it against the same --data-dir
# and have colorload -resume verify the recovered state end to end:
# version continuity between its replayed mutation journal and the
# server's snapshot+WAL recovery, and every post-restart coloring
# proper against the replayed graph (zero stale servings). Finishes
# with a SIGTERM to exercise the graceful drain-flush-exit path.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${COLORD_ADDR:-127.0.0.1:8742}"
SPEC="${CRASH_SPEC:-kron:11}"
GRAPH="${CRASH_GRAPH:-crash}"
CLIENTS="${CRASH_CLIENTS:-4}"
REQUESTS="${CRASH_REQUESTS:-4000}"

DATADIR="$(mktemp -d)"
JOURNAL="$(mktemp)"
COLORD_PID=""
cleanup() {
    [ -n "$COLORD_PID" ] && kill -9 "$COLORD_PID" 2>/dev/null || true
    rm -rf "$DATADIR" "$JOURNAL"
}
trap cleanup EXIT

mkdir -p bin
go build -o bin/colord ./cmd/colord
go build -o bin/colorload ./cmd/colorload

start_colord() {
    bin/colord -addr "$ADDR" -max-inflight 4 -data-dir "$DATADIR" -compact-bytes "${CRASH_COMPACT_BYTES:-65536}" &
    COLORD_PID=$!
    for _ in $(seq 100); do
        if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "crashtest: colord did not become healthy on $ADDR" >&2
    exit 1
}

echo "crashtest: phase 1 — mixed workload, then kill -9 mid-run"
start_colord
bin/colorload -addr "http://$ADDR" -graph "$GRAPH" -spec "$SPEC" \
    -c "$CLIENTS" -n "$REQUESTS" -verify -mutate-frac 0.3 \
    -mutation-log "$JOURNAL" -tolerate-request-errors &
LOAD_PID=$!

# Wait until mutations have actually landed (version >= 3), then kill.
advanced=""
for _ in $(seq 200); do
    # The || true keeps set -e quiet while the graph is still missing.
    ver="$(curl -sf "http://$ADDR/v1/graphs/$GRAPH" 2>/dev/null |
        sed -n 's/.*"version": \([0-9]*\).*/\1/p' | head -1 || true)"
    if [ -n "${ver:-}" ] && [ "$ver" -ge 3 ]; then
        advanced=1
        break
    fi
    sleep 0.1
done
if [ -z "$advanced" ]; then
    echo "crashtest: graph version never advanced; cannot exercise recovery" >&2
    exit 1
fi
kill -9 "$COLORD_PID"
wait "$COLORD_PID" 2>/dev/null || true
COLORD_PID=""

# The load run must finish cleanly: transport errors from the dying
# server are tolerated, any verification failure is fatal.
if ! wait "$LOAD_PID"; then
    echo "crashtest: pre-kill colorload run reported verification failures" >&2
    exit 1
fi

echo "crashtest: phase 2 — restart from $DATADIR and verify recovery"
start_colord
listing="$(curl -sf "http://$ADDR/v1/graphs")"
echo "$listing" | grep -q "\"name\": \"$GRAPH\"" || {
    echo "crashtest: restarted daemon did not recover graph $GRAPH" >&2
    exit 1
}
echo "$listing" | grep -q '"persisted": true' || {
    echo "crashtest: recovered graph not marked persisted" >&2
    exit 1
}

# Strict post-restart run: -resume reconciles the journal against the
# recovered version (exits non-zero on any mismatch or stale serving).
bin/colorload -addr "http://$ADDR" -graph "$GRAPH" -spec "$SPEC" \
    -c "$CLIENTS" -n 300 -verify -mutate-frac 0.2 \
    -mutation-log "$JOURNAL" -resume

# Force a compaction, then graceful shutdown (drain + WAL flush).
curl -sf -X POST "http://$ADDR/v1/admin/compact" -d "{\"graph\":\"$GRAPH\"}" >/dev/null
kill -TERM "$COLORD_PID"
if ! wait "$COLORD_PID"; then
    echo "crashtest: graceful shutdown exited non-zero" >&2
    exit 1
fi
COLORD_PID=""

echo "crashtest: phase 3 — boot once more from the compacted snapshot"
start_colord
bin/colorload -addr "http://$ADDR" -graph "$GRAPH" -spec "$SPEC" \
    -c "$CLIENTS" -n 100 -verify -mutate-frac 0.2 \
    -mutation-log "$JOURNAL" -resume
kill -TERM "$COLORD_PID"
wait "$COLORD_PID" || true
COLORD_PID=""

echo "crashtest: OK — kill -9 recovery, journal reconciliation, compaction and graceful shutdown all verified"
