#!/usr/bin/env bash
# Cluster smoke test (ISSUE 5, EXPERIMENTS.md E13): boot a 3-node
# colord cluster on one box, drive a mixed color/mutate workload
# through a node that does NOT own the target graph (exercising the
# proxy + replication path end to end), kill -9 the graph's primary
# mid-run, verify the failover replica serves the exact pre-crash
# graphVersion with identical verified colorings (zero acked mutations
# lost), restart the old primary on its own data directory and verify
# it catches up to the watermark and the whole cluster reconverges.
# Also measures the failover window (kill -> first successful write).
#
# Requires jq (present on the CI runners; apt install jq locally).
set -euo pipefail
cd "$(dirname "$0")/.."

BASE_PORT="${CLUSTER_BASE_PORT:-8761}"
SPEC="${CLUSTER_SPEC:-kron:10}"
GRAPH="${CLUSTER_GRAPH:-clusterg}"
CLIENTS="${CLUSTER_CLIENTS:-4}"
REQUESTS="${CLUSTER_REQUESTS:-3000}"

command -v jq >/dev/null || { echo "clustertest: jq is required" >&2; exit 1; }

PORTS=("$BASE_PORT" "$((BASE_PORT + 1))" "$((BASE_PORT + 2))")
URLS=()
for p in "${PORTS[@]}"; do URLS+=("http://127.0.0.1:$p"); done
PEERS="$(IFS=,; echo "${URLS[*]}")"

WORK="$(mktemp -d)"
JOURNAL="$WORK/mutations.jsonl"
declare -A PIDS=()
cleanup() {
    for pid in "${PIDS[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

mkdir -p bin
go build -o bin/colord ./cmd/colord
go build -o bin/colorload ./cmd/colorload

# start_node N: boot node N on its port + data dir.
start_node() {
    local i="$1"
    bin/colord -addr "127.0.0.1:${PORTS[$i]}" -max-inflight 4 \
        -data-dir "$WORK/node$i" \
        -cluster-self "${URLS[$i]}" -cluster-peers "$PEERS" \
        -cluster-replicas 2 -cluster-probe-interval 250ms -cluster-fail-after 2 \
        -recolor -recolor-interval 100ms &
    PIDS[$i]=$!
}

wait_healthy() {
    local url="$1"
    for _ in $(seq 100); do
        if curl -sf "$url/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "clustertest: $url never became healthy" >&2
    exit 1
}

node_version() { # node_version URL -> local version of $GRAPH ("" if absent)
    curl -sf "$1/v1/internal/version?graph=$GRAPH" 2>/dev/null | jq -r .version || true
}

echo "clustertest: booting 3 nodes on ports ${PORTS[*]}"
for i in 0 1 2; do start_node "$i"; done
for u in "${URLS[@]}"; do wait_healthy "$u"; done

# Register the graph via node 0 (proxied to the primary if node 0 does
# not own it), then read the placement from cluster status.
curl -sf -X POST "${URLS[0]}/v1/graphs" -d "{\"name\":\"$GRAPH\",\"spec\":\"$SPEC\"}" >/dev/null
status="$(curl -sf "${URLS[0]}/v1/cluster/status")"
PRIMARY="$(echo "$status" | jq -r --arg g "$GRAPH" '.graphs[] | select(.name == $g) | .primary')"
mapfile -t PLACEMENT < <(echo "$status" | jq -r --arg g "$GRAPH" '.graphs[] | select(.name == $g) | .placement[]')
[ -n "$PRIMARY" ] || { echo "clustertest: no primary resolved for $GRAPH" >&2; exit 1; }

# Identify the replica, the pure-proxy outsider node, and their pids.
# (Guard every [ ] used as a loop tail: under set -e a false test as
# the last command of a function/loop would abort the script.)
REPLICA="" OUTSIDER=""
for u in "${URLS[@]}"; do
    in_placement=0
    for p in "${PLACEMENT[@]}"; do
        if [ "$u" = "$p" ]; then in_placement=1; fi
    done
    if [ "$u" = "$PRIMARY" ]; then :
    elif [ "$in_placement" = 1 ]; then REPLICA="$u"
    else OUTSIDER="$u"; fi
done
idx_of() {
    for i in 0 1 2; do
        if [ "${URLS[$i]}" = "$1" ]; then echo "$i"; fi
    done
}
PRIMARY_IDX="$(idx_of "$PRIMARY")"
[ -n "$REPLICA" ] && [ -n "$OUTSIDER" ] && [ -n "$PRIMARY_IDX" ] || {
    echo "clustertest: could not resolve roles (primary=$PRIMARY replica=$REPLICA outsider=$OUTSIDER)" >&2
    exit 1
}
echo "clustertest: $GRAPH placed on primary $PRIMARY + replica $REPLICA; outsider $OUTSIDER proxies"

echo "clustertest: phase 1 — mixed workload via the NON-OWNER node, then kill -9 the primary"
bin/colorload -addr "$OUTSIDER" -graph "$GRAPH" -spec "$SPEC" \
    -c "$CLIENTS" -n "$REQUESTS" -verify -mutate-frac 0.3 \
    -mutation-log "$JOURNAL" -tolerate-request-errors &
LOAD_PID=$!

advanced=""
for _ in $(seq 300); do
    ver="$(node_version "$PRIMARY")"
    if [ -n "${ver:-}" ] && [ "$ver" != "null" ] && [ "$ver" -ge 3 ]; then advanced=1; break; fi
    sleep 0.1
done
[ -n "$advanced" ] || { echo "clustertest: graph version never advanced" >&2; exit 1; }

kill -9 "${PIDS[$PRIMARY_IDX]}"
wait "${PIDS[$PRIMARY_IDX]}" 2>/dev/null || true
KILL_NS="$(date +%s%N)"
unset "PIDS[$PRIMARY_IDX]"

# Failover window: time from the kill to the first write acked by the
# promoted replica (empty mutate batches are valid no-op writes that
# still exercise routing + promotion sync).
FAILOVER_MS=""
for _ in $(seq 600); do
    if curl -sf -X POST "$OUTSIDER/v1/graphs/$GRAPH/mutate" -d '{}' >/dev/null 2>&1; then
        FAILOVER_MS=$(( ($(date +%s%N) - KILL_NS) / 1000000 ))
        break
    fi
    sleep 0.05
done
[ -n "$FAILOVER_MS" ] || { echo "clustertest: writes never failed over" >&2; exit 1; }
echo "clustertest: failover window (kill -9 -> first acked write via $OUTSIDER): ${FAILOVER_MS} ms"

if ! wait "$LOAD_PID"; then
    echo "clustertest: pre-kill colorload reported verification failures" >&2
    exit 1
fi

echo "clustertest: phase 2 — failover replica must serve the exact pre-crash state"
# -resume replays the journal and REQUIRES the surviving cluster to sit
# at the journal's version: an acked mutation lost in failover fails
# here. Traffic round-robins over both survivors, so the determinism
# check doubles as cross-node consistency verification.
bin/colorload -addr "$REPLICA,$OUTSIDER" -graph "$GRAPH" -spec "$SPEC" \
    -c "$CLIENTS" -n 400 -verify -mutate-frac 0.2 \
    -mutation-log "$JOURNAL" -resume

echo "clustertest: phase 3 — restart the old primary; it must rejoin and catch up"
start_node "$PRIMARY_IDX"
wait_healthy "$PRIMARY"
# Nudge a write through the rejoined node's ownership: the epoch sync
# pulls the missed tail from a survivor before the write is accepted.
# Retry while the cluster converges on the rejoined member's liveness.
for _ in $(seq 100); do
    if curl -sf -X POST "$PRIMARY/v1/graphs/$GRAPH/mutate" -d '{}' >/dev/null 2>&1; then break; fi
    sleep 0.1
done

head_ver="$(node_version "$REPLICA")"
caught_up=""
for _ in $(seq 100); do
    ver="$(node_version "$PRIMARY")"
    if [ -n "${ver:-}" ] && [ "$ver" = "$head_ver" ]; then caught_up=1; break; fi
    sleep 0.1
done
[ -n "$caught_up" ] || {
    echo "clustertest: rejoined node stuck at $(node_version "$PRIMARY"), head is $head_ver" >&2
    exit 1
}
echo "clustertest: rejoined node caught up to version $head_ver"

# Final mixed run across ALL THREE nodes: every returned coloring is
# verified against the replayed journal, and identical keys must hash
# identically whichever node serves them.
bin/colorload -addr "$PRIMARY,$REPLICA,$OUTSIDER" -graph "$GRAPH" -spec "$SPEC" \
    -c "$CLIENTS" -n 400 -verify -mutate-frac 0.2 \
    -mutation-log "$JOURNAL" -resume

# The placement nodes must agree on the final version (the outsider
# holds no local copy — /v1/internal/version is strictly local and
# 404s there, which node_version maps to an empty string).
versions=""
for u in "${URLS[@]}"; do
    v="$(node_version "$u")"
    if [ -n "$v" ] && [ "$v" != "null" ]; then versions="$versions $v"; fi
done
echo "clustertest: final local versions:$versions (placement nodes must agree)"
set -- $versions
[ "$#" -ge 2 ] && [ "$1" = "$2" ] || { echo "clustertest: placement nodes disagree on the final version" >&2; exit 1; }

echo "clustertest: phase 4 — cluster-wide metrics aggregation + quality convergence"
# Any node must serve the whole cluster's metrics document: all three
# members present and reporting, and the aggregate latency histogram
# merged QUANTILE-CONSISTENTLY — the merged count for the busiest
# endpoint equals the SUM of the per-node counts (buckets are merged,
# quantiles are never averaged averages).
CM="$(curl -sf "$OUTSIDER/v1/cluster/metrics")"
read -r total reporting nnodes <<< "$(echo "$CM" | jq -r '"\(.nodesTotal) \(.nodesReporting) \(.nodes | length)"')"
if [ "$total" != 3 ] || [ "$reporting" != 3 ] || [ "$nnodes" != 3 ]; then
    echo "clustertest: cluster metrics missing members: total=$total reporting=$reporting nodes=$nnodes" >&2
    exit 1
fi
aggc="$(echo "$CM" | jq '.aggregate.httpLatency["/v1/color"].count // 0')"
sumc="$(echo "$CM" | jq '[.nodes[].metrics.httpLatency["/v1/color"].count // 0] | add')"
if [ "$aggc" != "$sumc" ] || [ "$aggc" -eq 0 ]; then
    echo "clustertest: merged /v1/color histogram count $aggc does not equal the per-node sum $sumc" >&2
    exit 1
fi
p50="$(echo "$CM" | jq '.aggregate.latencySummary["/v1/color"].p50')"
echo "clustertest: cluster metrics: 3/3 nodes reporting, merged /v1/color count $aggc (= per-node sum), p50 ${p50}s"

# Quality convergence: register a graph whose greedy baseline reliably
# improves; the PRIMARY's background worker adopts a strictly better
# coloring and ships it to the replica, so both placement nodes' LOCAL
# quality state (each node's own /metrics) must converge on the same
# reduced palette, and the cluster aggregate must count the savings.
QG="qualg"
curl -sf -X POST "$OUTSIDER/v1/graphs" -d "{\"name\":\"$QG\",\"spec\":\"er:800:8000\",\"targetColors\":9}" >/dev/null
mapfile -t QPLACE < <(curl -sf "${URLS[0]}/v1/cluster/status" | jq -r --arg g "$QG" '.graphs[] | select(.name == $g) | .placement[]')
[ "${#QPLACE[@]}" -ge 2 ] || { echo "clustertest: no placement resolved for $QG" >&2; exit 1; }
converged="" c0="" c1="" savedagg=""
for _ in $(seq 200); do
    c0="$(curl -sf "${QPLACE[0]}/metrics" | jq -r --arg g "$QG" '.quality.graphs[$g].colors // empty')"
    c1="$(curl -sf "${QPLACE[1]}/metrics" | jq -r --arg g "$QG" '.quality.graphs[$g].colors // empty')"
    savedagg="$(curl -sf "$OUTSIDER/v1/cluster/metrics" | jq '.aggregate.qualityColorsSaved // 0')"
    if [ -n "$c0" ] && [ "$c0" = "$c1" ] && [ "$c0" -gt 0 ] && [ "$savedagg" -gt 0 ]; then
        converged=1
        break
    fi
    sleep 0.2
done
[ -n "$converged" ] || {
    echo "clustertest: quality state never converged for $QG: ${QPLACE[0]} says '${c0}' colors, ${QPLACE[1]} says '${c1}', aggregate saved '${savedagg}'" >&2
    exit 1
}
echo "clustertest: quality improvement replicated: both placement nodes hold $c0 colors (cluster saved $savedagg)"

echo "clustertest: OK — non-owner proxying, synchronous replication, kill -9 failover (window ${FAILOVER_MS} ms), journal-verified zero loss, rejoin catch-up, cluster metrics + quality convergence"
