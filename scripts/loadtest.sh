#!/usr/bin/env bash
# Closed-loop load test, two passes:
#
#  1. single node, mixed color/mutate workload over JSON — fails when
#     any request errors or any returned coloring fails client-side
#     verification (colorload exits non-zero in both cases);
#  2. 3-node cluster, read-heavy workload over the binary protocol
#     (colorload -binary): key-routed reads round-robin across all
#     three nodes, every coloring is verified and cross-checked
#     byte-identical against JSON once per key, and the aggregate
#     req/s must clear LOAD_BINARY_FLOOR (default 754.3 — the PR 5
#     single-node MIXED workload rate: the clustered binary read path
#     must beat the old write-sharing baseline outright).
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${COLORD_ADDR:-127.0.0.1:8741}"
CLIENTS="${LOAD_CLIENTS:-8}"
REQUESTS="${LOAD_REQUESTS:-200}"
INFLIGHT="${COLORD_INFLIGHT:-8}"
SPEC="${LOAD_SPEC:-kron:12}"
# >= 20% of requests mutate the graph; every returned coloring is still
# verified client-side against the replayed mutation log (E10/E11).
MUTATE="${LOAD_MUTATE:-0.2}"

mkdir -p bin
go build -o bin/colord ./cmd/colord
go build -o bin/colorload ./cmd/colorload

bin/colord -addr "$ADDR" -max-inflight "$INFLIGHT" \
    -recolor -recolor-interval 100ms &
COLORD_PID=$!
trap 'kill "$COLORD_PID" 2>/dev/null || true; wait "$COLORD_PID" 2>/dev/null || true' EXIT

# Wait for the daemon to come up (healthz), at most ~5s.
up=""
for _ in $(seq 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
        up=1
        break
    fi
    sleep 0.1
done
if [ -z "$up" ]; then
    echo "loadtest: colord did not become healthy on $ADDR" >&2
    exit 1
fi

bin/colorload -addr "http://$ADDR" -graph loadtest -spec "$SPEC" \
    -c "$CLIENTS" -n "$REQUESTS" -verify -mutate-frac "$MUTATE" \
    -metrics-out loadtest_metrics.json

# Prometheus exposition sanity while the loaded daemon is still up:
# the scrape must be non-empty, every sample line must parse, and no
# series may appear twice (duplicate series break real scrapers).
prom_lint() { # prom_lint URL LABEL
    local prom
    prom="$(mktemp)"
    curl -sf "$1" > "$prom"
    awk -v label="$2" '
      /^$/ { next }
      /^#/ { next }
      {
        if ($0 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? [-+0-9.eE]*(Inf|NaN)?$/) {
          printf "loadtest: %s: unparseable exposition line: %s\n", label, $0
          bad = 1
        }
        series = $0
        sub(/ [^ ]*$/, "", series)
        if (seen[series]++) {
          printf "loadtest: %s: duplicate series: %s\n", label, series
          bad = 1
        }
        n++
      }
      END {
        if (n == 0) { printf "loadtest: %s: empty Prometheus exposition\n", label; exit 1 }
        if (bad) exit 1
        printf "loadtest: %s: Prometheus exposition ok (%d samples, no duplicates)\n", label, n
      }
    ' "$prom"
    local rc=$?
    rm -f "$prom"
    return $rc
}
prom_lint "http://$ADDR/metrics?format=prom" "/metrics"

# ---- background recoloring: generation swap without a version bump -----
# Register a graph whose greedy baseline reliably improves, wait for the
# idle quality worker to adopt a strictly better coloring, then prove
# the adoption swapped in a new cache generation while graphVersion
# stayed put: colorsSaved > 0, colors < initialColors, version still 0,
# and the maintained binary read serves the improved palette.
curl -sf -X POST "http://$ADDR/v1/graphs" \
    -d '{"name":"recolorme","spec":"er:800:8000"}' >/dev/null
saved=""
for _ in $(seq 100); do
    Q="$(curl -sf "http://$ADDR/v1/graphs/recolorme/quality" || true)"
    saved="$(printf '%s' "$Q" | sed -n 's/.*"colorsSaved": *\([0-9]*\).*/\1/p' | tail -n 1)"
    if [ -n "$saved" ] && [ "$saved" -gt 0 ]; then break; fi
    saved=""
    sleep 0.2
done
if [ -z "$saved" ]; then
    echo "loadtest: quality worker never improved er:800:8000 (quality doc: $(curl -sf "http://$ADDR/v1/graphs/recolorme/quality" || echo unavailable))" >&2
    exit 1
fi
colors="$(printf '%s' "$Q" | sed -n 's/.*"colors": *\([0-9]*\).*/\1/p' | tail -n 1)"
initial="$(printf '%s' "$Q" | sed -n 's/.*"initialColors": *\([0-9]*\).*/\1/p' | tail -n 1)"
qver="$(printf '%s' "$Q" | sed -n 's/.*"version": *\([0-9]*\).*/\1/p' | tail -n 1)"
if [ "$qver" != "0" ] || [ "$colors" -ge "$initial" ]; then
    echo "loadtest: recolor adoption broke its contract: version=$qver colors=$colors initialColors=$initial ($Q)" >&2
    exit 1
fi
BINREAD="$(mktemp)"
curl -sf "http://$ADDR/v1/color/bin?graph=recolorme&algorithm=maintained" > "$BINREAD"
# Header bytes 8..15 hold graphVersion (uint64 LE), 36..39 numColors
# (uint32 LE): the read path must serve the adopted palette at the
# UNCHANGED version — the cache generation swapped, the version did not.
read -r binver binc <<< "$(od -An -j8 -N8 -tu8 "$BINREAD" | tr -d ' ') $(od -An -j36 -N4 -tu4 "$BINREAD" | tr -d ' ')"
rm -f "$BINREAD"
if [ "$binver" != "0" ] || [ "$binc" != "$colors" ]; then
    echo "loadtest: maintained binary read serves version=$binver numColors=$binc, quality doc says version=$qver colors=$colors" >&2
    exit 1
fi
echo "loadtest: recoloring saved $saved colors ($initial -> $colors) at version 0; maintained read serves the adopted palette"

kill "$COLORD_PID" 2>/dev/null || true
wait "$COLORD_PID" 2>/dev/null || true
trap - EXIT

# ---- pass 2: 3-node cluster, read-heavy binary protocol ----------------
BASE_PORT="${LOAD_CLUSTER_BASE_PORT:-8745}"
BIN_REQUESTS="${LOAD_BINARY_REQUESTS:-2000}"
BIN_FLOOR="${LOAD_BINARY_FLOOR:-754.3}"

PORTS=("$BASE_PORT" "$((BASE_PORT + 1))" "$((BASE_PORT + 2))")
URLS=()
for p in "${PORTS[@]}"; do URLS+=("http://127.0.0.1:$p"); done
PEERS="$(IFS=,; echo "${URLS[*]}")"
WORK="$(mktemp -d)"
PIDS=()
cleanup() {
    for pid in "${PIDS[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

for i in 0 1 2; do
    bin/colord -addr "127.0.0.1:${PORTS[$i]}" -max-inflight "$INFLIGHT" \
        -data-dir "$WORK/node$i" \
        -cluster-self "${URLS[$i]}" -cluster-peers "$PEERS" \
        -cluster-replicas 2 -cluster-probe-interval 250ms -cluster-fail-after 2 &
    PIDS+=($!)
done
for u in "${URLS[@]}"; do
    up=""
    for _ in $(seq 100); do
        if curl -sf "$u/healthz" >/dev/null 2>&1; then up=1; break; fi
        sleep 0.1
    done
    [ -n "$up" ] || { echo "loadtest: cluster node $u never became healthy" >&2; exit 1; }
done

echo "loadtest: pass 2 — read-heavy binary protocol across ${URLS[*]}"
BIN_OUT="$WORK/binary.out"
bin/colorload -addr "$(IFS=,; echo "${URLS[*]}")" -graph loadbin -spec "$SPEC" \
    -c "$CLIENTS" -n "$BIN_REQUESTS" -seeds 16 -verify -binary -mutate-frac 0 \
    | tee "$BIN_OUT"

# The summary line ends "... in 1.23s (1234.5 req/s)": hold it to the floor.
awk -v floor="$BIN_FLOOR" '
  / req\/s\)$/ {
    rate = $(NF - 1)
    sub(/\(/, "", rate)
    seen = 1
    if (rate + 0 <= floor + 0) {
      printf "loadtest: binary read throughput %.1f req/s is not above the %.1f floor\n", rate, floor
      exit 1
    }
    printf "loadtest: binary read throughput %.1f req/s clears the %.1f floor\n", rate, floor
  }
  END { if (!seen) { print "loadtest: no req/s summary line found"; exit 1 } }
' "$BIN_OUT"

# The cluster-wide metrics document must render clean Prometheus
# exposition from any member, and its aggregate must cover the load the
# cluster just served (colorRequests summed across the three nodes).
prom_lint "${URLS[0]}/v1/cluster/metrics?format=prom" "/v1/cluster/metrics"
CM="$(curl -sf "${URLS[1]}/v1/cluster/metrics")"
reporting="$(printf '%s' "$CM" | sed -n 's/.*"nodesReporting": *\([0-9]*\).*/\1/p' | tail -n 1)"
# colorRequests appears once per reporting node and once in the
# aggregate; the aggregate is serialized last.
creq="$(printf '%s' "$CM" | sed -n 's/.*"colorRequests": *\([0-9]*\).*/\1/p' | tail -n 1)"
if [ "$reporting" != "3" ] || [ -z "$creq" ] || [ "$creq" -lt "$BIN_REQUESTS" ]; then
    echo "loadtest: cluster metrics aggregate is wrong: nodesReporting=$reporting colorRequests=$creq (want 3 nodes, >= $BIN_REQUESTS reads)" >&2
    exit 1
fi
echo "loadtest: cluster metrics aggregate ok: 3 nodes reporting, $creq color requests"
