#!/usr/bin/env bash
# Closed-loop load test: build colord + colorload, start the daemon,
# drive it, print the latency/cache summary, shut down. Fails when any
# request errors or any returned coloring fails client-side verification
# (colorload exits non-zero in both cases).
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${COLORD_ADDR:-127.0.0.1:8741}"
CLIENTS="${LOAD_CLIENTS:-8}"
REQUESTS="${LOAD_REQUESTS:-200}"
INFLIGHT="${COLORD_INFLIGHT:-8}"
SPEC="${LOAD_SPEC:-kron:12}"
# >= 20% of requests mutate the graph; every returned coloring is still
# verified client-side against the replayed mutation log (E10/E11).
MUTATE="${LOAD_MUTATE:-0.2}"

mkdir -p bin
go build -o bin/colord ./cmd/colord
go build -o bin/colorload ./cmd/colorload

bin/colord -addr "$ADDR" -max-inflight "$INFLIGHT" &
COLORD_PID=$!
trap 'kill "$COLORD_PID" 2>/dev/null || true; wait "$COLORD_PID" 2>/dev/null || true' EXIT

# Wait for the daemon to come up (healthz), at most ~5s.
up=""
for _ in $(seq 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
        up=1
        break
    fi
    sleep 0.1
done
if [ -z "$up" ]; then
    echo "loadtest: colord did not become healthy on $ADDR" >&2
    exit 1
fi

bin/colorload -addr "http://$ADDR" -graph loadtest -spec "$SPEC" \
    -c "$CLIENTS" -n "$REQUESTS" -verify -mutate-frac "$MUTATE"
