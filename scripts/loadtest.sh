#!/usr/bin/env bash
# Closed-loop load test, two passes:
#
#  1. single node, mixed color/mutate workload over JSON — fails when
#     any request errors or any returned coloring fails client-side
#     verification (colorload exits non-zero in both cases);
#  2. 3-node cluster, read-heavy workload over the binary protocol
#     (colorload -binary): key-routed reads round-robin across all
#     three nodes, every coloring is verified and cross-checked
#     byte-identical against JSON once per key, and the aggregate
#     req/s must clear LOAD_BINARY_FLOOR (default 754.3 — the PR 5
#     single-node MIXED workload rate: the clustered binary read path
#     must beat the old write-sharing baseline outright).
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${COLORD_ADDR:-127.0.0.1:8741}"
CLIENTS="${LOAD_CLIENTS:-8}"
REQUESTS="${LOAD_REQUESTS:-200}"
INFLIGHT="${COLORD_INFLIGHT:-8}"
SPEC="${LOAD_SPEC:-kron:12}"
# >= 20% of requests mutate the graph; every returned coloring is still
# verified client-side against the replayed mutation log (E10/E11).
MUTATE="${LOAD_MUTATE:-0.2}"

mkdir -p bin
go build -o bin/colord ./cmd/colord
go build -o bin/colorload ./cmd/colorload

bin/colord -addr "$ADDR" -max-inflight "$INFLIGHT" &
COLORD_PID=$!
trap 'kill "$COLORD_PID" 2>/dev/null || true; wait "$COLORD_PID" 2>/dev/null || true' EXIT

# Wait for the daemon to come up (healthz), at most ~5s.
up=""
for _ in $(seq 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
        up=1
        break
    fi
    sleep 0.1
done
if [ -z "$up" ]; then
    echo "loadtest: colord did not become healthy on $ADDR" >&2
    exit 1
fi

bin/colorload -addr "http://$ADDR" -graph loadtest -spec "$SPEC" \
    -c "$CLIENTS" -n "$REQUESTS" -verify -mutate-frac "$MUTATE" \
    -metrics-out loadtest_metrics.json

# Prometheus exposition sanity while the loaded daemon is still up:
# the scrape must be non-empty, every sample line must parse, and no
# series may appear twice (duplicate series break real scrapers).
PROM="$(mktemp)"
curl -sf "http://$ADDR/metrics?format=prom" > "$PROM"
awk '
  /^$/ { next }
  /^#/ { next }
  {
    if ($0 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? [-+0-9.eE]*(Inf|NaN)?$/) {
      printf "loadtest: unparseable exposition line: %s\n", $0
      bad = 1
    }
    series = $0
    sub(/ [^ ]*$/, "", series)
    if (seen[series]++) {
      printf "loadtest: duplicate series: %s\n", series
      bad = 1
    }
    n++
  }
  END {
    if (n == 0) { print "loadtest: empty Prometheus exposition"; exit 1 }
    if (bad) exit 1
    printf "loadtest: Prometheus exposition ok (%d samples, no duplicates)\n", n
  }
' "$PROM"
rm -f "$PROM"

kill "$COLORD_PID" 2>/dev/null || true
wait "$COLORD_PID" 2>/dev/null || true
trap - EXIT

# ---- pass 2: 3-node cluster, read-heavy binary protocol ----------------
BASE_PORT="${LOAD_CLUSTER_BASE_PORT:-8745}"
BIN_REQUESTS="${LOAD_BINARY_REQUESTS:-2000}"
BIN_FLOOR="${LOAD_BINARY_FLOOR:-754.3}"

PORTS=("$BASE_PORT" "$((BASE_PORT + 1))" "$((BASE_PORT + 2))")
URLS=()
for p in "${PORTS[@]}"; do URLS+=("http://127.0.0.1:$p"); done
PEERS="$(IFS=,; echo "${URLS[*]}")"
WORK="$(mktemp -d)"
PIDS=()
cleanup() {
    for pid in "${PIDS[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

for i in 0 1 2; do
    bin/colord -addr "127.0.0.1:${PORTS[$i]}" -max-inflight "$INFLIGHT" \
        -data-dir "$WORK/node$i" \
        -cluster-self "${URLS[$i]}" -cluster-peers "$PEERS" \
        -cluster-replicas 2 -cluster-probe-interval 250ms -cluster-fail-after 2 &
    PIDS+=($!)
done
for u in "${URLS[@]}"; do
    up=""
    for _ in $(seq 100); do
        if curl -sf "$u/healthz" >/dev/null 2>&1; then up=1; break; fi
        sleep 0.1
    done
    [ -n "$up" ] || { echo "loadtest: cluster node $u never became healthy" >&2; exit 1; }
done

echo "loadtest: pass 2 — read-heavy binary protocol across ${URLS[*]}"
BIN_OUT="$WORK/binary.out"
bin/colorload -addr "$(IFS=,; echo "${URLS[*]}")" -graph loadbin -spec "$SPEC" \
    -c "$CLIENTS" -n "$BIN_REQUESTS" -seeds 16 -verify -binary -mutate-frac 0 \
    | tee "$BIN_OUT"

# The summary line ends "... in 1.23s (1234.5 req/s)": hold it to the floor.
awk -v floor="$BIN_FLOOR" '
  / req\/s\)$/ {
    rate = $(NF - 1)
    sub(/\(/, "", rate)
    seen = 1
    if (rate + 0 <= floor + 0) {
      printf "loadtest: binary read throughput %.1f req/s is not above the %.1f floor\n", rate, floor
      exit 1
    }
    printf "loadtest: binary read throughput %.1f req/s clears the %.1f floor\n", rate, floor
  }
  END { if (!seen) { print "loadtest: no req/s summary line found"; exit 1 } }
' "$BIN_OUT"
